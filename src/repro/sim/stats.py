"""Measurement primitives.

The paper reports three kinds of quantities and each has a recorder here:

* request latencies and their percentiles (P50/P90/P99/P999) —
  :class:`LatencyRecorder`;
* throughput / operation counts — :class:`Counter`;
* where CPU time went (application logic vs. runtime vs. kernel vs. idle,
  Figures 1b and 2) — :class:`BusyAccounter`;
* values tracked over time (granted cores, consumed bandwidth) —
  :class:`TimeWeightedValue`.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np


def summarize_ns(samples: List[int]) -> Dict[str, float]:
    """Summary of latency samples in microseconds.

    Returns mean and the percentiles the paper's Table 1 reports; an empty
    sample list yields NaNs so that report code does not special-case it.
    """
    if not samples:
        nan = float("nan")
        return {"count": 0, "avg_us": nan, "p50_us": nan, "p90_us": nan,
                "p99_us": nan, "p999_us": nan, "max_us": nan}
    arr = np.asarray(samples, dtype=np.float64) / 1_000.0
    p50, p90, p99, p999 = np.percentile(arr, [50, 90, 99, 99.9])
    return {
        "count": int(arr.size),
        "avg_us": float(arr.mean()),
        "p50_us": float(p50),
        "p90_us": float(p90),
        "p99_us": float(p99),
        "p999_us": float(p999),
        "max_us": float(arr.max()),
    }


class LatencyRecorder:
    """Accumulates latency samples (integer nanoseconds)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[int] = []

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self.samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean_us(self) -> float:
        if not self.samples:
            return float("nan")
        return sum(self.samples) / len(self.samples) / 1_000.0

    def percentile_us(self, pct: float) -> float:
        if not self.samples:
            return float("nan")
        return float(np.percentile(np.asarray(self.samples), pct)) / 1_000.0

    def summary(self) -> Dict[str, float]:
        return summarize_ns(self.samples)

    def histogram(self):
        """This recorder's samples as a mergeable log histogram."""
        from repro.obs.hist import LogHistogram
        return LogHistogram.from_samples(self.samples)

    @staticmethod
    def merge(recorders):
        """Exact log-histogram merge of many recorders (or histograms).

        Used wherever percentiles must aggregate across independent
        simulations — per-server recorders in a cluster run, per-report
        recorders in a ``run_colocation_batch`` sweep.  Because the
        bucket boundaries are fixed, the merged histogram is *exactly*
        what histogramming the concatenated sample streams would give,
        in any merge order.
        """
        from repro.obs.hist import merge_recorder_histograms
        return merge_recorder_histograms(recorders)

    def clear(self) -> None:
        self.samples.clear()


class Counter:
    """A monotone operation counter with throughput helpers."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value: int = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"negative increment {amount}")
        self.value += amount

    def rate_per_sec(self, elapsed_ns: int) -> float:
        """Operations per second over ``elapsed_ns`` of simulated time."""
        if elapsed_ns <= 0:
            return 0.0
        return self.value * 1e9 / elapsed_ns

    def clear(self) -> None:
        self.value = 0


class TimeWeightedValue:
    """Tracks a piecewise-constant value and integrates it over time."""

    def __init__(self, sim, initial: float = 0.0) -> None:
        self._sim = sim
        self._value = float(initial)
        self._last_change = sim.now
        self._integral = 0.0
        self._start = sim.now

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self._sim.now
        self._integral += self._value * (now - self._last_change)
        self._value = float(value)
        self._last_change = now

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def time_average(self) -> float:
        """Average value from construction (or last reset) until now."""
        now = self._sim.now
        elapsed = now - self._start
        if elapsed <= 0:
            return self._value
        integral = self._integral + self._value * (now - self._last_change)
        return integral / elapsed

    def reset(self) -> None:
        self._integral = 0.0
        self._start = self._sim.now
        self._last_change = self._sim.now


class BusyAccounter:
    """Attributes elapsed core time to named categories.

    Categories used throughout the reproduction: ``"app"`` (application
    logic), ``"runtime"`` (userspace scheduler/runtime work, including
    spinning and stealing), ``"kernel"`` (traps, IPIs, kernel context
    switches), and ``"idle"``.  Figures 1b and 2 are produced directly from
    these buckets.
    """

    def __init__(self) -> None:
        self.buckets: Dict[str, int] = {}

    def charge(self, category: str, elapsed_ns: int) -> None:
        if elapsed_ns < 0:
            raise ValueError(f"negative charge {elapsed_ns}")
        self.buckets[category] = self.buckets.get(category, 0) + elapsed_ns

    def total(self) -> int:
        return sum(self.buckets.values())

    def fraction(self, category: str) -> float:
        total = self.total()
        if total == 0:
            return 0.0
        return self.buckets.get(category, 0) / total

    def cores_equivalent(self, category: str, elapsed_ns: int) -> float:
        """Busy time in ``category`` expressed as a number of cores."""
        if elapsed_ns <= 0:
            return 0.0
        return self.buckets.get(category, 0) / elapsed_ns

    def merged(self, other: "BusyAccounter") -> "BusyAccounter":
        out = BusyAccounter()
        for src in (self, other):
            for key, val in src.buckets.items():
                out.buckets[key] = out.buckets.get(key, 0) + val
        return out

    def clear(self) -> None:
        self.buckets.clear()
