"""Deterministic named RNG streams.

Every stochastic component (each workload's arrival process, each service
time sampler, the cache address stream, ...) draws from its own named
stream so that adding a new component never perturbs the draws seen by
existing ones.  Streams are derived from a single root seed via SHA-256 of
``(root_seed, name)``, so the mapping is stable across runs and platforms.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the same object (the
        stream's state advances as it is consumed).
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.root_seed}/{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(
            f"{self.root_seed}/spawn/{name}".encode("utf-8")
        ).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
