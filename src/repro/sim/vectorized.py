"""Batch uniform draws on the engine's named RNG streams.

The per-event sources draw one variate per request through
``random.Random`` — a Python-level call per arrival, plus a timer event
to deliver it.  The fluid engine (``repro.sim.fluid``) instead pre-draws
whole arrival schedules, which needs the *same* uniform stream served in
bulk: :class:`BufferedUniforms` transplants a ``random.Random``'s
Mersenne-Twister state into a numpy ``RandomState`` and serves the
identical 53-bit uniforms from vectorized blocks.

Bit-identity is load-bearing, not best-effort.  Both generators build a
double from two twister words as ``(a >> 5) * 2**26 + (b >> 6)) / 2**53``,
so a transplanted stream reproduces ``rng.random()`` exactly — the
equivalence tests in ``tests/sim/test_vectorized.py`` assert integer
equality, and the determinism contract in docs/SIMULATION.md depends on
it.  What is *not* bit-identical is ``np.log`` vs ``math.log`` (SIMD
polynomials differ in the last ulp on ~0.3% of inputs on this machine),
so the distribution replays below keep every transcendental in scalar
``math`` code, applying numpy only to the uniform block draw.

The replays mirror CPython's ``random.py`` (stable 3.9 → 3.12):

* ``expovariate(lambd)``  = ``-log(1 - u) / lambd``  (1 uniform)
* ``normalvariate``       = Kinderman–Monahan rejection (2 uniforms per
  attempt, a variable number of attempts)
* ``lognormvariate``      = ``exp(normalvariate(mu, sigma))``

Consumers that only need *part* of a stream may over-draw: a
``BufferedUniforms`` never writes state back into the Python ``Random``,
so it must only wrap streams the wrapped code path owns exclusively
(every ``arrivals/*`` / ``svc/*`` stream is dedicated to one source).
"""

from __future__ import annotations

import math
import random
from typing import List

import numpy as np

#: CPython's random.NV_MAGICCONST, reproduced so the rejection loop
#: below stays bit-identical even if the stdlib ever renames it.
_NV_MAGICCONST = 4 * math.exp(-0.5) / math.sqrt(2.0)

_BLOCK = 8192


class BufferedUniforms:
    """Serve a ``random.Random``'s uniform stream from numpy blocks.

    The wrapped ``Random`` is left untouched; the twister state is
    copied out once and advanced privately.  ``u()`` returns exactly the
    floats ``rng.random()`` would have returned, in order.
    """

    __slots__ = ("_state", "_buf", "_i", "drawn")

    def __init__(self, rng: random.Random, block: int = _BLOCK) -> None:
        version, internal, _gauss = rng.getstate()
        if version != 3:  # pragma: no cover - future-proofing guard
            raise ValueError(f"unsupported Random state version {version}")
        keys, pos = internal[:-1], internal[-1]
        self._state = np.random.RandomState()
        self._state.set_state(("MT19937",
                               np.array(keys, dtype=np.uint32), pos))
        self._buf = self._state.random_sample(block)
        self._i = 0
        #: uniforms consumed so far (tests compare against scalar draws)
        self.drawn = 0

    def u(self) -> float:
        """The next uniform in [0, 1) — bit-identical to ``rng.random()``."""
        i = self._i
        buf = self._buf
        if i >= len(buf):
            buf = self._buf = self._state.random_sample(_BLOCK)
            i = 0
        self._i = i + 1
        self.drawn += 1
        return buf[i]

    # -- scalar replays of random.Random's variates --------------------
    def expovariate(self, lambd: float) -> float:
        return -math.log(1.0 - self.u()) / lambd

    def normalvariate(self, mu: float, sigma: float) -> float:
        while True:
            u1 = self.u()
            u2 = 1.0 - self.u()
            z = _NV_MAGICCONST * (u1 - 0.5) / u2
            if z * z / 4.0 <= -math.log(u2):
                break
        return mu + z * sigma

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return math.exp(self.normalvariate(mu, sigma))


def draw_open_loop(rng: random.Random, rate_mops: float,
                   until_ns: int, start_ns: int = 0) -> List[int]:
    """All arrival timestamps an ``OpenLoopSource`` would generate.

    Replays ``OpenLoopSource._tick`` exactly: a request is submitted at
    the tick time, *then* the next gap is drawn as
    ``max(1, int(expovariate(1.0 / (1000.0 / rate_mops))))``.  The engine
    fires events at ``t <= until``, so the last arrival is the largest
    tick not past ``until_ns``.  Integer-identical to the per-event
    source on the same stream (same float ops, same draw order).
    """
    if rate_mops <= 0:
        return []
    buf = BufferedUniforms(rng)
    log = math.log
    u = buf.u
    lambd = 1.0 / (1000.0 / rate_mops)
    times: List[int] = []
    append = times.append
    t = start_ns
    while t <= until_ns:
        append(t)
        t += max(1, int(-log(1.0 - u()) / lambd))
    return times


def draw_bursty(rng: random.Random, rate_mops: float, until_ns: int,
                burst_factor: float = 4.0, calm_mean_ns: int = 80_000,
                burst_mean_ns: int = 20_000,
                start_ns: int = 0) -> List[int]:
    """All arrival timestamps a ``BurstySource`` would generate.

    Ticks and phase toggles draw from the *same* stream, interleaved in
    event order, so the replay runs the two timer chains through a
    two-entry merge with the engine's ``(time, seq)`` tie-break: the
    tick chain is scheduled first (in ``OpenLoopSource.__init__``), the
    toggle chain second, and each firing re-schedules itself with a
    fresh sequence number.
    """
    if rate_mops <= 0:
        return []
    total = calm_mean_ns + burst_mean_ns
    base = rate_mops * total / (calm_mean_ns + burst_factor * burst_mean_ns)
    buf = BufferedUniforms(rng)
    log = math.log
    u = buf.u
    times: List[int] = []
    append = times.append
    rate = base
    in_burst = False
    tick_t, tick_seq = start_ns, 1
    tog_t, tog_seq = start_ns + calm_mean_ns, 2
    seq = 2
    while True:
        if (tick_t, tick_seq) < (tog_t, tog_seq):
            if tick_t > until_ns:
                break
            append(tick_t)
            lambd = 1.0 / (1000.0 / rate)
            tick_t += max(1, int(-log(1.0 - u()) / lambd))
            seq += 1
            tick_seq = seq
        else:
            if tog_t > until_ns:
                break
            in_burst = not in_burst
            rate = base * (burst_factor if in_burst else 1.0)
            mean = burst_mean_ns if in_burst else calm_mean_ns
            tog_t += max(1, int(-log(1.0 - u()) / (1.0 / mean)))
            seq += 1
            tog_seq = seq
    return times
