"""A calendar-queue (bucketed-heap) event queue for the discrete engine.

The binary heap in ``repro.sim.engine`` pays ``O(log n)`` per push/pop
with the constant of tuple comparisons over the whole pending set.  Most
of this codebase's events are *near-future* timers (arrival gaps,
service completions, scan ticks — all within a few tens of
microseconds), which is the access pattern calendar queues exploit:
events hash into fixed-width time buckets, each bucket holds a small
heap, and the dispatcher only ever touches the handful of buckets near
the clock.

:class:`CalendarSimulator` is a drop-in :class:`~repro.sim.engine.
Simulator` replacement — same API, same cancellation semantics, and
(load-bearing) the *same firing order*: entries carry the same global
``(time, seq)`` keys, buckets are visited in time order, and within a
bucket the heap orders by the same tuples, so a run driven by either
engine fires the identical event sequence.  ``tests/sim/test_calendar.py``
pins that equivalence under schedule/cancel storms.

The fluid mode removes events wholesale; this class makes the events
that *remain* cheaper, and is deliberately its own module so the stock
engine's hot loop stays untouched (byte-identity of ``--fluid off``
includes never re-ordering that code).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.engine import Event, SimulationError, Simulator

#: default bucket width: 4096 ns covers the common timer horizon
#: (switches, reactions, service times) with single-digit bucket hops
_DEFAULT_WIDTH = 4096


class CalendarSimulator(Simulator):
    """Simulator with a bucketed event calendar instead of one heap.

    Buckets are keyed by ``time // bucket_width_ns`` in a dict; a side
    heap of bucket keys finds the earliest non-empty bucket without
    scanning.  All public behaviour (API, ordering, cancellation,
    ``run(until=...)`` clock semantics) matches the base class.
    """

    def __init__(self, bucket_width_ns: int = _DEFAULT_WIDTH) -> None:
        super().__init__()
        if bucket_width_ns < 1:
            raise ValueError("bucket width must be positive")
        self._width = bucket_width_ns
        self._buckets: dict = {}
        self._keys: List[int] = []  # min-heap of (possibly stale) keys

    # -- scheduling ----------------------------------------------------
    def _push(self, time: int, entry: tuple) -> None:
        key = time // self._width
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [entry]
            heapq.heappush(self._keys, key)
        else:
            heapq.heappush(bucket, entry)

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        self._seq = seq = self._seq + 1
        time = int(time)
        event = Event(time, seq, fn, args, owner=self)
        self._push(time, (time, seq, event))
        self._live += 1
        return event

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        time = self.now + int(delay)
        event = Event(time, seq, fn, args, owner=self)
        self._push(time, (time, seq, event))
        self._live += 1
        return event

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq = seq = self._seq + 1
        time = self.now + int(delay)
        self._push(time, (time, seq, None, fn, args))
        self._live += 1

    # -- queue access --------------------------------------------------
    def _front_bucket(self) -> Optional[list]:
        """Earliest non-empty bucket, dropping stale keys and dead
        entries at bucket fronts on the way."""
        keys = self._keys
        buckets = self._buckets
        while keys:
            key = keys[0]
            bucket = buckets.get(key)
            if not bucket:
                heapq.heappop(keys)
                buckets.pop(key, None)
                continue
            entry = bucket[0]
            event = entry[2]
            if event is not None and not event._alive:
                heapq.heappop(bucket)
                self._dead -= 1
                continue
            return bucket
        return None

    def peek(self) -> Optional[int]:
        bucket = self._front_bucket()
        if bucket is None:
            return None
        return bucket[0][0]

    def step(self) -> bool:
        bucket = self._front_bucket()
        if bucket is None:
            return False
        entry = heapq.heappop(bucket)
        self.now = entry[0]
        event = entry[2]
        if event is None:
            fn, args = entry[3], entry[4]
        else:
            event._alive = False
            fn, args = event.fn, event.args
        self._live -= 1
        self.events_fired += 1
        fn(*args)
        return True

    def run(self, until: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        pop = heapq.heappop
        try:
            while not self._stopped:
                bucket = self._front_bucket()
                if bucket is None:
                    break
                entry = bucket[0]
                if until is not None and entry[0] > until:
                    break
                pop(bucket)
                self.now = entry[0]
                event = entry[2]
                self._live -= 1
                self.events_fired += 1
                if event is None:
                    entry[3](*entry[4])
                else:
                    event._alive = False
                    event.fn(*event.args)
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    # -- maintenance ---------------------------------------------------
    def _drop_dead(self) -> None:
        self._front_bucket()

    def _compact(self) -> None:
        """Purge dead entries from every bucket (Event.cancel calls this
        through the same owner hook as the base class)."""
        buckets = self._buckets
        for key in list(buckets):
            bucket = buckets[key]
            live = [entry for entry in bucket
                    if entry[2] is None or entry[2]._alive]
            if len(live) != len(bucket):
                if live:
                    heapq.heapify(live)
                    buckets[key] = live
                else:
                    del buckets[key]
        self._dead = 0
