"""Fixed-tick gauge sampling for system-state time series.

The flight recorder (``repro.obs.flight``) explains *one request's*
latency; the :class:`GaugeSeries` explains the *system state it flew
through*: queue depths, busy cores, the autoscaler's BE-core cap,
requests in flight on the fabric, and the shed rate, all sampled on one
deterministic tick so a Perfetto counter track lines up with the request
spans.

Probes are zero-argument callables registered by the experiment harness
(:func:`repro.experiments.common.run_colocation`); they must be pure
reads — sampling adds simulator events but never changes component
state, so runs differ from unsampled ones only by the tick events
themselves.  The series is only constructed when flight recording is on,
keeping default runs byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple


class GaugeSeries:
    """Samples named gauges every ``tick_ns`` of simulated time."""

    def __init__(self, sim, tick_ns: int = 50_000,
                 max_samples: int = 100_000) -> None:
        if tick_ns <= 0:
            raise ValueError(f"tick_ns must be positive: {tick_ns}")
        self.sim = sim
        self.tick_ns = tick_ns
        self.max_samples = max_samples
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        #: name -> [(ts_ns, value), ...]
        self.samples: Dict[str, List[Tuple[int, float]]] = {}
        self.samples_dropped = 0
        self._started = False

    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        if any(existing == name for existing, _ in self._probes):
            raise ValueError(f"duplicate gauge {name!r}")
        self._probes.append((name, probe))
        self.samples[name] = []

    def start(self) -> None:
        """Begin ticking (call once, after all probes are registered)."""
        if self._started:
            return
        self._started = True
        self.sim.post(self.tick_ns, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        for name, probe in self._probes:
            series = self.samples[name]
            if len(series) < self.max_samples:
                series.append((now, float(probe())))
            else:
                self.samples_dropped += 1
        self.sim.post(self.tick_ns, self._tick)

    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        """Drop warmup-phase samples (the tick keeps running)."""
        for series in self.samples.values():
            series.clear()
        self.samples_dropped = 0

    def names(self) -> List[str]:
        return [name for name, _ in self._probes]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-gauge min/avg/max/last over the measurement window."""
        out: Dict[str, Dict[str, float]] = {}
        for name, _ in self._probes:
            series = self.samples[name]
            if not series:
                out[name] = {"count": 0}
                continue
            values = [v for _, v in series]
            out[name] = {
                "count": len(values),
                "min": min(values),
                "avg": sum(values) / len(values),
                "max": max(values),
                "last": values[-1],
            }
        return out

    def chrome_events(self, pid: int = 3) -> List[Dict[str, Any]]:
        """Chrome ``trace_event`` counter ("C") rows, one track per gauge."""
        events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": pid, "name": "process_name",
             "args": {"name": "gauges"}},
        ]
        for name, _ in self._probes:
            for ts, value in self.samples[name]:
                events.append({
                    "name": name, "ph": "C", "pid": pid,
                    "ts": ts / 1000.0, "args": {"value": value},
                })
        return events
