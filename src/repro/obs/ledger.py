"""The operation ledger: one charging chokepoint for every modeled cost.

Every layer of the reproduction — hardware controllers, the syscall
layer, the userspace switch, the VESSEL runtime and scheduler — charges
its operations through one :class:`OpLedger`::

    ledger.charge("wrpkru", costs.wrpkru_ns, core=core.id, domain="hw")

instead of privately accumulating ``total += self.costs.xxx_ns``.  That
gives the repo a single place to answer the question every performance
claim in the paper reduces to: *which operations ran on the switch path
and what did each cost* (Table 1, Figures 1-3).

Domains are free-form strings; the conventional ones are ``hw``,
``syscall``, ``kernel``, ``uproc``, and ``vessel``, plus two reserved
for the failure model (:data:`FAULT_DOMAIN`, :data:`FALLBACK_DOMAIN`):
``fault`` rows count injected faults (``fault:uintr_drop``,
``fault:uproc_crash``, ...) and ``fallback`` rows count the degraded
recovery paths the containment machinery took (``fallback:kernel_ipi``,
``fallback:sched_restart``, ...), so a breakdown shows not just that a
run degraded but which mechanism absorbed the damage.

The ledger keeps, per ``(domain, op)``:

* an operation count and total nanoseconds;
* per-core nanosecond attribution;
* a fixed-bucket log histogram (8 sub-buckets per power of two, so
  relative error is bounded by 12.5 %) from which P50/P99/P99.9 are
  derived without storing samples.

Zero-overhead disablement: components default to the shared
:data:`NULL_LEDGER`, whose ``charge``/``count_op`` are empty methods and
whose ``enabled`` flag lets hot paths skip even argument construction::

    if self.ledger.enabled:
        self.ledger.charge(...)

Exports: :meth:`OpLedger.breakdown_table` renders the per-op text table
(the ``--op-breakdown`` flag), and :meth:`OpLedger.chrome_trace` emits
Chrome ``trace_event`` JSON — optionally merged with a
:class:`~repro.sim.trace.Tracer`'s core spans so spans and op counts
share one event stream loadable in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.hist import SUBDIV, bucket_index, bucket_upper_ns

#: ledger domain for injected-fault markers
FAULT_DOMAIN = "fault"
#: ledger domain for degraded recovery paths (watchdog retries, kernel
#: IPIs, forced switches, scheduler restarts)
FALLBACK_DOMAIN = "fallback"

# The bucketing scheme lives in repro.obs.hist (shared with the cluster
# report merge); these aliases keep the ledger's historical names.
_SUBDIV = SUBDIV
_bucket_index = bucket_index
_bucket_upper_ns = bucket_upper_ns


class _OpStat:
    """Accumulated statistics for one (domain, op) pair."""

    __slots__ = ("count", "total_ns", "hist", "per_core_ns")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        #: sparse log histogram: bucket index -> sample count
        self.hist: Dict[int, int] = {}
        #: core id -> nanoseconds charged on that core
        self.per_core_ns: Dict[int, int] = {}

    def record(self, cost_ns: int, core: Optional[int]) -> None:
        self.count += 1
        self.total_ns += cost_ns
        bucket = _bucket_index(cost_ns)
        self.hist[bucket] = self.hist.get(bucket, 0) + 1
        if core is not None:
            self.per_core_ns[core] = self.per_core_ns.get(core, 0) + cost_ns

    def percentile_ns(self, pct: float) -> float:
        """Estimated percentile from the log histogram (upper bound)."""
        if self.count == 0:
            return float("nan")
        target = pct / 100.0 * self.count
        cumulative = 0
        for bucket in sorted(self.hist):
            cumulative += self.hist[bucket]
            if cumulative >= target:
                return _bucket_upper_ns(bucket)
        return _bucket_upper_ns(max(self.hist))

    def merge(self, other: "_OpStat") -> None:
        self.count += other.count
        self.total_ns += other.total_ns
        for bucket, n in other.hist.items():
            self.hist[bucket] = self.hist.get(bucket, 0) + n
        for core, ns in other.per_core_ns.items():
            self.per_core_ns[core] = self.per_core_ns.get(core, 0) + ns


class OpLedger:
    """Per-operation cost accounting shared by every layer.

    ``sim`` (optional) timestamps captured events; ``capture_events``
    additionally records one event per charge (bounded by
    ``max_events``) for the Chrome trace export.  ``tracer`` links the
    core-span stream into :meth:`chrome_trace`.
    """

    enabled = True

    def __init__(self, sim=None, tracer=None, capture_events: bool = False,
                 max_events: int = 200_000) -> None:
        self.sim = sim
        self.tracer = tracer
        self.max_events = max_events
        self.capture_events = capture_events
        self._stats: Dict[Tuple[str, str], _OpStat] = {}
        #: bumped by reset(); lets ChargeHandles notice their stat is stale
        self._generation = 0
        #: captured (ts_ns, core, domain, op, cost_ns) rows
        self.events: List[Tuple[int, Optional[int], str, str, int]] = []
        self.events_dropped = 0

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(self, op: str, cost_ns: int, core: Optional[int] = None,
               domain: str = "misc") -> None:
        """Attribute ``cost_ns`` of operation ``op`` (optionally to a core)."""
        stat = self._stats.get((domain, op))
        if stat is None:
            stat = self._stats[(domain, op)] = _OpStat()
        stat.record(cost_ns, core)
        if self.capture_events:
            self._capture(core, domain, op, cost_ns)

    def count_op(self, op: str, core: Optional[int] = None,
                 domain: str = "misc") -> None:
        """Count an operation that carries no modeled latency of its own."""
        self.charge(op, 0, core=core, domain=domain)

    def handle(self, domain: str, op: str) -> "ChargeHandle":
        """A precomputed charging handle for one ``(domain, op)`` pair.

        Hot call sites (the userspace switch, Uintr delivery) charge the
        same few ops millions of times per run; a handle binds the
        underlying stat once so the per-charge cost is one method call
        instead of tuple construction plus a dict lookup.  Handles
        survive :meth:`reset` — they re-bind lazily via a generation
        check — and total exactly as :meth:`charge` does (the invariant
        ``tests/obs`` pins down).
        """
        return ChargeHandle(self, domain, op)

    def _stat_for(self, domain: str, op: str) -> _OpStat:
        stat = self._stats.get((domain, op))
        if stat is None:
            stat = self._stats[(domain, op)] = _OpStat()
        return stat

    def _capture(self, core: Optional[int], domain: str, op: str,
                 cost_ns: int) -> None:
        if len(self.events) < self.max_events:
            now = self.sim.now if self.sim is not None else 0
            self.events.append((now, core, domain, op, cost_ns))
        else:
            self.events_dropped += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def op_count(self, op: str, domain: Optional[str] = None) -> int:
        return sum(stat.count for (dom, name), stat in self._stats.items()
                   if name == op and (domain is None or dom == domain))

    def total_ns(self, domain: Optional[str] = None,
                 op: Optional[str] = None) -> int:
        return sum(stat.total_ns for (dom, name), stat in self._stats.items()
                   if (domain is None or dom == domain)
                   and (op is None or name == op))

    def op_counts(self, domain: Optional[str] = None) -> Dict[str, int]:
        """op -> count, merged across matching domains."""
        out: Dict[str, int] = {}
        for (dom, name), stat in self._stats.items():
            if domain is None or dom == domain:
                out[name] = out.get(name, 0) + stat.count
        return out

    def percentile_ns(self, op: str, pct: float,
                      domain: Optional[str] = None) -> float:
        merged = _OpStat()
        for (dom, name), stat in self._stats.items():
            if name == op and (domain is None or dom == domain):
                merged.merge(stat)
        return merged.percentile_ns(pct)

    def core_ns(self, core: int, domain: Optional[str] = None) -> int:
        return sum(stat.per_core_ns.get(core, 0)
                   for (dom, _), stat in self._stats.items()
                   if domain is None or dom == domain)

    def domains(self) -> List[str]:
        return sorted({dom for dom, _ in self._stats})

    def rows(self) -> Iterable[Tuple[str, str, _OpStat]]:
        """(domain, op, stat) rows in deterministic (domain, op) order."""
        for (dom, name) in sorted(self._stats):
            yield dom, name, self._stats[(dom, name)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def merge(self, other: "OpLedger") -> None:
        """Fold ``other``'s statistics (not its events) into this ledger."""
        for (key, stat) in other._stats.items():
            mine = self._stats.get(key)
            if mine is None:
                mine = self._stats[key] = _OpStat()
            mine.merge(stat)

    def reset(self) -> None:
        self._stats.clear()
        self._generation += 1
        self.events.clear()
        self.events_dropped = 0

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def breakdown_table(self, domain: Optional[str] = None) -> str:
        """Fixed-width per-op table: count, total/avg ns, P50/P99/P99.9."""
        headers = ["domain", "op", "count", "total_ns", "avg_ns",
                   "p50_ns", "p99_ns", "p999_ns", "share%"]
        grand_total = self.total_ns(domain) or 1
        rows: List[List[str]] = []
        for dom, op, stat in self.rows():
            if domain is not None and dom != domain:
                continue
            avg = stat.total_ns / stat.count if stat.count else 0.0
            rows.append([
                dom, op, str(stat.count), str(stat.total_ns),
                f"{avg:.1f}",
                f"{stat.percentile_ns(50):.0f}",
                f"{stat.percentile_ns(99):.0f}",
                f"{stat.percentile_ns(99.9):.0f}",
                f"{100.0 * stat.total_ns / grand_total:.1f}",
            ])
        widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
                  for i, h in enumerate(headers)]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i])
                                   for i in range(len(headers))))
        return "\n".join(lines)

    def chrome_trace(self, tracer=None, flight=None,
                     gauges=None) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON (as a dict) of spans and op charges.

        Core spans (from ``tracer`` or the attached one) become complete
        ("X") events under pid 0; captured ledger charges become "X"
        events under pid 1, one tid per core (-1 for uncored charges).
        A :class:`~repro.obs.flight.FlightRecorder` adds its slowest
        requests' stage spans under pid 2 and a
        :class:`~repro.obs.timeseries.GaugeSeries` its counter tracks
        under pid 3, so one Perfetto timeline correlates cores, ops,
        request decompositions and system gauges.  Timestamps and
        durations are microseconds, as the format requires.
        """
        tracer = tracer if tracer is not None else self.tracer
        trace_events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": 0, "name": "process_name",
             "args": {"name": "cores"}},
            {"ph": "M", "pid": 1, "name": "process_name",
             "args": {"name": "ops"}},
        ]
        if tracer is not None:
            for core_id in sorted(tracer.spans):
                for start, end, category in tracer.spans[core_id]:
                    trace_events.append({
                        "name": category, "cat": "span", "ph": "X",
                        "ts": start / 1000.0, "dur": (end - start) / 1000.0,
                        "pid": 0, "tid": core_id,
                    })
        for ts, core, dom, op, cost in self.events:
            trace_events.append({
                "name": op, "cat": dom, "ph": "X",
                "ts": ts / 1000.0, "dur": cost / 1000.0,
                "pid": 1, "tid": core if core is not None else -1,
                "args": {"cost_ns": cost},
            })
        if flight is not None:
            trace_events.extend(flight.chrome_events(pid=2))
        if gauges is not None:
            trace_events.extend(gauges.chrome_events(pid=3))
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def write_chrome_trace(self, path: str, tracer=None, flight=None,
                           gauges=None) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(tracer, flight=flight,
                                        gauges=gauges), handle)


class ChargeHandle:
    """Fast-path recorder bound to one ``(domain, op)`` stat.

    Created by :meth:`OpLedger.handle`.  :meth:`charge` skips the
    per-call key-tuple construction and dict lookup of
    :meth:`OpLedger.charge`; a generation check keeps the binding
    correct across :meth:`OpLedger.reset` (which experiments call at
    the start of every measurement window).
    """

    __slots__ = ("ledger", "domain", "op", "_stat", "_generation")

    def __init__(self, ledger: OpLedger, domain: str, op: str) -> None:
        self.ledger = ledger
        self.domain = domain
        self.op = op
        # Bound on first charge, not eagerly: an op that never fires must
        # not appear as a zero-count row in breakdowns.
        self._stat: Optional[_OpStat] = None
        self._generation = ledger._generation

    def charge(self, cost_ns: int, core: Optional[int] = None) -> None:
        ledger = self.ledger
        stat = self._stat
        if stat is None or self._generation != ledger._generation:
            self._stat = stat = ledger._stat_for(self.domain, self.op)
            self._generation = ledger._generation
        stat.record(cost_ns, core)
        if ledger.capture_events:
            ledger._capture(core, self.domain, self.op, cost_ns)


class _NullChargeHandle:
    """Handle counterpart of :class:`NullLedger`: records nothing."""

    __slots__ = ()

    def charge(self, cost_ns: int, core: Optional[int] = None) -> None:
        pass


class NullLedger(OpLedger):
    """A ledger that records nothing; the zero-overhead default."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def charge(self, op: str, cost_ns: int, core: Optional[int] = None,
               domain: str = "misc") -> None:
        pass

    def count_op(self, op: str, core: Optional[int] = None,
                 domain: str = "misc") -> None:
        pass

    def handle(self, domain: str, op: str) -> "_NullChargeHandle":
        return _NULL_HANDLE


_NULL_HANDLE = _NullChargeHandle()

#: shared no-op instance every component defaults to
NULL_LEDGER = NullLedger()
