"""Per-request flight recording: lifecycle stage spans and their audit.

The :class:`~repro.obs.ledger.OpLedger` answers *which operations* cost
nanoseconds and the :class:`~repro.sim.trace.Tracer` answers *which core*
was busy; neither follows one request end-to-end.  The
:class:`FlightRecorder` does: every chokepoint a request passes through
stamps a *mark* — ``(label, timestamp_ns, core)`` — onto the request's
``flight`` list, and when the request reaches a terminal outcome the
recorder folds the mark sequence into per-stage durations.

Marks and the stage each one opens (:data:`STAGE_AFTER`)::

    client_send -> net_in        client machine put it on the wire
    ingress     -> nic_ring      NIC RSS-steered it onto an RX ring
    admit       -> sched_queue   admission control let it through
    submit      -> sched_queue   the scheduling system's intake
    run_start   -> service       a core began (or resumed) serving it
    preempt     -> preempt_wait  preempted mid-service, requeued
    io_park     -> io_wait       parked on a device
    io_done     -> sched_queue   IO completed, requeued for 2nd phase
    complete    -> net_out       App.complete fired (server done)

Terminal outcomes (:data:`TERMINAL`): ``done`` (response reached the
client, or direct-submit completion), ``dup`` (response arrived after a
retransmission already completed the logical request), ``shed``
(admission rejection observed), ``drop`` (packet lost on a link or NIC
ring).  Stage durations *telescope*: every mark opens exactly one stage
that the next mark closes, so the per-request stage sum equals the
measured latency **exactly** — the same integer the client-side
:class:`~repro.sim.stats.LatencyRecorder` records.  That identity is not
a modeling choice to validate but an invariant :meth:`audit` enforces,
together with mark monotonicity, transition legality
(:data:`LEGAL_NEXT`) and per-core non-overlap of service segments.

Zero-overhead disablement mirrors ``NULL_LEDGER``: components default to
the shared :data:`NULL_FLIGHT`, whose methods are empty and whose
``enabled`` flag lets hot paths skip even argument construction, so runs
without ``--latency-breakdown``/``--trace-requests`` stay byte-identical
and bench-neutral.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.stats import summarize_ns

if TYPE_CHECKING:  # pragma: no cover - circular at runtime via hardware
    from repro.workloads.base import Request

#: mark label -> the lifecycle stage that runs *from this mark to the
#: next one*.  Every non-terminal label appears here, which is what makes
#: per-request stage durations telescope to the measured latency.
STAGE_AFTER: Dict[str, str] = {
    "client_send": "net_in",
    "ingress": "nic_ring",
    "admit": "sched_queue",
    "submit": "sched_queue",
    "run_start": "service",
    "preempt": "preempt_wait",
    "io_park": "io_wait",
    "io_done": "sched_queue",
    "complete": "net_out",
    "shed": "net_out",
}

#: terminal outcome labels appended by :meth:`FlightRecorder.finalize`
TERMINAL = ("done", "dup", "shed", "drop")

#: legal successor labels, the transition audit's ground truth
LEGAL_NEXT: Dict[str, Tuple[str, ...]] = {
    "client_send": ("ingress", "drop"),
    "ingress": ("admit", "submit", "shed", "drop"),
    "admit": ("submit",),
    "submit": ("run_start",),
    "run_start": ("preempt", "io_park", "complete"),
    "preempt": ("run_start",),
    "io_park": ("io_done",),
    "io_done": ("run_start",),
    "complete": ("done", "dup", "drop"),
    "shed": ("shed", "drop"),
}

#: stage print order for breakdown tables
STAGE_ORDER = ("net_in", "nic_ring", "sched_queue", "service",
               "preempt_wait", "io_wait", "net_out")

_MAX_VIOLATIONS = 50


class FlightRecorder:
    """Collects per-request lifecycle marks and derives stage spans.

    One instance per simulation (attached to the
    :class:`~repro.hardware.machine.Machine` like the ledger).  Marks
    live on ``request.flight`` — a plain list, appended in simulation
    order — and are folded into aggregates at :meth:`finalize` time so
    the recorder never holds references to live requests.
    """

    enabled = True

    def __init__(self, sim, reservoir_k: int = 4,
                 max_segments: int = 250_000) -> None:
        self.sim = sim
        self.reservoir_k = max(0, reservoir_k)
        self.max_segments = max_segments
        #: (app, stage) -> list of stage durations (ns) of "done" flights
        self._stage_ns: Dict[Tuple[str, str], List[int]] = {}
        #: app -> list of end-to-end totals (ns) of "done" flights
        self._totals: Dict[str, List[int]] = {}
        #: (app, outcome) -> finalized-flight count
        self._outcomes: Dict[Tuple[str, str], int] = {}
        #: (core, start_ns, end_ns) service segments for the overlap audit
        self._segments: List[Tuple[int, int, int]] = []
        self.segments_dropped = 0
        #: min-heap of (total_ns, seq, app, outcome, marks) — K slowest
        self._slowest: List[Tuple[int, int, str, str, tuple]] = []
        self._seq = 0
        self._violations: List[str] = []
        self._violations_dropped = 0

    # ------------------------------------------------------------------
    # Marking (hot path — callers guard with ``if flight.enabled:``)
    # ------------------------------------------------------------------
    def mark(self, request: Request, label: str,
             core: Optional[int] = None) -> None:
        """Stamp ``label`` at the current simulation time.

        The first mark of a request's life creates its flight record;
        finalized requests (``flight`` reset to None) are never
        resurrected because nothing touches a request after its terminal
        outcome — retransmissions are fresh ``Request`` objects.
        """
        rec = request.flight
        if rec is None:
            rec = request.flight = []
        rec.append((label, self.sim.now, core))

    def begin(self, request: Request) -> None:
        """Client put the request on the wire (``client_send``)."""
        self.mark(request, "client_send")

    def on_submit(self, request: Request) -> None:
        """The scheduling system accepted the request (``submit``)."""
        self.mark(request, "submit")

    def on_complete(self, request: Request) -> None:
        """Server-side completion; finalizes direct-submit requests.

        Net-delivered requests are completed by the fabric instead:
        ``NetFabric._server_done`` stamps "complete" (same sim event)
        before shipping the response, and finalization happens at
        client delivery or at a drop — by the time the system calls us
        the flight may already be finalized (``request.flight is
        None``) if the response leg lost the packet synchronously.
        """
        if request.flight is None or request.net_token is not None:
            return
        self.mark(request, "complete")
        self.finalize(request, "done")

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, request: Request, outcome: str) -> None:
        """Close the flight with ``outcome`` and fold it into aggregates."""
        marks = request.flight
        if marks is None:
            return
        request.flight = None
        marks.append((outcome, self.sim.now, None))
        app = request.app.name
        key = (app, outcome)
        self._outcomes[key] = self._outcomes.get(key, 0) + 1
        total = marks[-1][1] - marks[0][1]
        self._check(app, marks, total)
        if outcome != "done":
            return
        self._totals.setdefault(app, []).append(total)
        prev_label, prev_ts, _prev_core = marks[0]
        for label, ts, core in marks[1:]:
            stage = STAGE_AFTER.get(prev_label)
            if stage is not None and ts > prev_ts:
                self._stage_ns.setdefault((app, stage), []).append(
                    ts - prev_ts)
            prev_label, prev_ts = label, ts
        self._collect_segments(marks)
        if self.reservoir_k:
            entry = (total, self._seq, app, outcome, tuple(marks))
            self._seq += 1
            if len(self._slowest) < self.reservoir_k:
                heapq.heappush(self._slowest, entry)
            elif entry > self._slowest[0]:
                heapq.heapreplace(self._slowest, entry)

    def _collect_segments(self, marks: List[tuple]) -> None:
        for i, (label, ts, core) in enumerate(marks[:-1]):
            if label == "run_start" and core is not None:
                end = marks[i + 1][1]
                if len(self._segments) < self.max_segments:
                    self._segments.append((core, ts, end))
                else:
                    self.segments_dropped += 1

    def _check(self, app: str, marks: List[tuple], total: int) -> None:
        """Per-flight invariants, evaluated once at finalize time."""
        stage_sum = 0
        prev_label, prev_ts, _ = marks[0]
        for label, ts, _core in marks[1:]:
            if ts < prev_ts:
                self._violate(f"{app}: non-monotonic mark {label}@{ts} "
                              f"after {prev_label}@{prev_ts}")
            legal = LEGAL_NEXT.get(prev_label)
            if legal is not None and label not in legal:
                self._violate(
                    f"{app}: illegal transition {prev_label} -> {label}")
            if prev_label in STAGE_AFTER:
                stage_sum += ts - prev_ts
            else:
                self._violate(f"{app}: mark {prev_label!r} opens no stage")
            prev_label, prev_ts = label, ts
        if stage_sum != total:
            self._violate(f"{app}: stage sum {stage_sum} != total {total}")

    def _violate(self, message: str) -> None:
        if len(self._violations) < _MAX_VIOLATIONS:
            self._violations.append(message)
        else:
            self._violations_dropped += 1

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """All invariant violations observed (empty list == clean).

        Per-flight checks (monotonicity, transition legality, stage-sum
        == latency) accumulate during finalization; the per-core
        non-overlap check over all recorded service segments runs here.
        """
        violations = list(self._violations)
        if self._violations_dropped:
            violations.append(
                f"... and {self._violations_dropped} more violations")
        by_core: Dict[int, List[Tuple[int, int]]] = {}
        for core, start, end in self._segments:
            by_core.setdefault(core, []).append((start, end))
        for core in sorted(by_core):
            segs = sorted(by_core[core])
            for (s0, e0), (s1, e1) in zip(segs, segs[1:]):
                if s1 < e0:
                    violations.append(
                        f"core {core}: overlapping service segments "
                        f"[{s0},{e0}) and [{s1},{e1})")
                    break
        if self.segments_dropped:
            violations.append(
                f"segment cap hit: {self.segments_dropped} segments "
                f"not overlap-checked")
        return violations

    # ------------------------------------------------------------------
    # Queries / summaries
    # ------------------------------------------------------------------
    def done_totals(self, app: str) -> List[int]:
        """End-to-end latencies (ns) of ``done`` flights, arrival order."""
        return self._totals.get(app, [])

    def outcome_counts(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for (app, outcome), count in sorted(self._outcomes.items()):
            out.setdefault(app, {})[outcome] = count
        return out

    def stage_summaries(self) -> Dict[str, Dict[str, Any]]:
        """Per-app stage decomposition of completed-request latency.

        For each app: ``stages`` maps stage name to a
        :func:`~repro.sim.stats.summarize_ns` summary, ``total`` is the
        summary of end-to-end latencies, and ``stage_sum_ns`` /
        ``total_sum_ns`` are the exact integer aggregates whose equality
        is the telescoping invariant.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for app in sorted(self._totals):
            totals = self._totals[app]
            stages = {}
            stage_sum = 0
            for stage in STAGE_ORDER:
                samples = self._stage_ns.get((app, stage))
                if samples:
                    stages[stage] = summarize_ns(samples)
                    stages[stage]["sum_ns"] = sum(samples)
                    stage_sum += stages[stage]["sum_ns"]
            out[app] = {
                "stages": stages,
                "total": summarize_ns(totals),
                "stage_sum_ns": stage_sum,
                "total_sum_ns": sum(totals),
            }
        return out

    def slowest_traces(self) -> List[Dict[str, Any]]:
        """The K slowest completed flights, slowest first."""
        entries = sorted(self._slowest, reverse=True)
        return [
            {"app": app, "total_ns": total, "outcome": outcome,
             "marks": [list(m) for m in marks]}
            for total, _seq, app, outcome, marks in entries
        ]

    # ------------------------------------------------------------------
    # Lifecycle / export
    # ------------------------------------------------------------------
    def begin_measurement(self) -> None:
        """Drop warmup-phase aggregates (in-flight marks are preserved)."""
        self._stage_ns.clear()
        self._totals.clear()
        self._outcomes.clear()
        self._segments.clear()
        self.segments_dropped = 0
        self._slowest.clear()
        self._violations.clear()
        self._violations_dropped = 0

    def chrome_events(self, pid: int = 2) -> List[Dict[str, Any]]:
        """Chrome ``trace_event`` rows for the slowest-flight reservoir.

        Each reservoir flight becomes one thread under ``pid``; its
        stage spans are complete ("X") events so a Perfetto timeline
        shows the per-request decomposition next to the core spans.
        """
        events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": pid, "name": "process_name",
             "args": {"name": "requests"}},
        ]
        for tid, flight in enumerate(self.slowest_traces()):
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": f"{flight['app']} "
                                 f"{flight['total_ns'] / 1000.0:.1f}us"},
            })
            marks = flight["marks"]
            for (label, ts, core), (_nl, nts, _nc) in zip(marks, marks[1:]):
                stage = STAGE_AFTER.get(label)
                if stage is None:
                    continue
                event = {"name": stage, "cat": "flight", "ph": "X",
                         "ts": ts / 1000.0, "dur": (nts - ts) / 1000.0,
                         "pid": pid, "tid": tid}
                if core is not None:
                    event["args"] = {"core": core}
                events.append(event)
        return events


class NullFlightRecorder(FlightRecorder):
    """A recorder that records nothing; the zero-overhead default."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sim=None)

    def mark(self, request: Request, label: str,
             core: Optional[int] = None) -> None:
        pass

    def begin(self, request: Request) -> None:
        pass

    def on_submit(self, request: Request) -> None:
        pass

    def on_complete(self, request: Request) -> None:
        pass

    def finalize(self, request: Request, outcome: str) -> None:
        pass


#: shared no-op instance every component defaults to
NULL_FLIGHT = NullFlightRecorder()


def format_breakdown(system: str,
                     summaries: Dict[str, Dict[str, Any]],
                     client_samples: Optional[Dict[str, Iterable[int]]]
                     = None) -> str:
    """Human-readable per-app stage table plus the reconciliation line.

    ``client_samples`` (app -> latency samples of the authoritative
    recorder, client-side when a fabric ran) makes the reconciliation
    explicit: the printed delta is the integer difference between the
    flight-derived stage sums and the independently measured latencies,
    and it must be zero.
    """
    from repro.experiments.common import format_table

    lines: List[str] = []
    rows: List[List[object]] = []
    for app, summary in summaries.items():
        total_sum = summary["total_sum_ns"] or 1
        for stage in STAGE_ORDER:
            stat = summary["stages"].get(stage)
            if not stat:
                continue
            rows.append([app, stage, stat["count"],
                         round(stat["avg_us"], 3),
                         round(stat["p50_us"], 3),
                         round(stat["p99_us"], 3),
                         round(100.0 * stat["sum_ns"] / total_sum, 1)])
        tot = summary["total"]
        rows.append([app, "TOTAL", tot["count"],
                     round(tot["avg_us"], 3), round(tot["p50_us"], 3),
                     round(tot["p99_us"], 3), 100.0])
    lines.append(f"[{system}] latency breakdown by stage:")
    lines.append(format_table(
        ["app", "stage", "count", "avg_us", "p50_us", "p99_us", "share%"],
        rows))
    for app, summary in summaries.items():
        delta = summary["stage_sum_ns"] - summary["total_sum_ns"]
        count = summary["total"]["count"]
        line = (f"[{system}] {app}: stage sums reconcile over {count} "
                f"requests (delta {delta} ns")
        if client_samples is not None and app in client_samples:
            measured = sum(client_samples[app])
            line += (f", vs measured latency "
                     f"{summary['total_sum_ns'] - measured} ns")
        lines.append(line + ")")
    return "\n".join(lines)
