"""Fixed-bucket log histograms with an *exact* merge.

Extracted from the operation ledger so every layer that needs
sample-free percentiles shares one bucketing scheme: 8 sub-buckets per
power of two, bounding the relative error of any percentile estimate by
12.5 %.  The payoff of fixed buckets is the merge: two histograms add
bucket-by-bucket, and the result is *identical* to histogramming the
concatenated sample streams — no percentile-of-percentiles
approximation.  That is what lets a cluster report merge per-server
latency recorders (``repro.cluster``) and a sweep merge per-run reports
(``run_colocation_batch`` summaries) without shipping raw samples
between processes.

Everything here is plain ints/dicts, so histograms pickle cheaply
across ``parallel_map`` workers and merge deterministically (bucket
order never matters for the totals).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: sub-buckets per power of two
SUBDIV = 8


def bucket_index(ns: int) -> int:
    """Fixed log-histogram bucket for a nanosecond value (0 -> bucket 0)."""
    if ns <= 0:
        return 0
    exp = ns.bit_length() - 1          # floor(log2(ns))
    base = 1 << exp
    sub = ((ns - base) << 3) >> exp    # 0..SUBDIV-1 within the octave
    return exp * SUBDIV + sub + 1


def bucket_upper_ns(index: int) -> float:
    """Inclusive upper bound of a bucket (the percentile estimate)."""
    if index <= 0:
        return 0.0
    index -= 1
    exp, sub = divmod(index, SUBDIV)
    base = 1 << exp
    return base + (sub + 1) * base / SUBDIV


class LogHistogram:
    """Sample-free latency aggregate: counts per log bucket + exact sums.

    ``record`` keeps the count, the exact nanosecond total, the exact
    max, and the bucket counts; percentiles come from the buckets
    (upper-bound estimates), while ``mean_us`` and ``max_us`` stay
    exact.  :meth:`merge` is the exact bucket-wise fold.
    """

    __slots__ = ("buckets", "count", "total_ns", "max_ns")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0

    # ------------------------------------------------------------------
    def record(self, ns: int) -> None:
        if ns < 0:
            raise ValueError(f"negative value {ns}")
        bucket = bucket_index(ns)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns

    @classmethod
    def from_samples(cls, samples: Iterable[int]) -> "LogHistogram":
        hist = cls()
        for ns in samples:
            hist.record(ns)
        return hist

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` in (exact: equals histogramming the union)."""
        for bucket, n in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        self.count += other.count
        self.total_ns += other.total_ns
        if other.max_ns > self.max_ns:
            self.max_ns = other.max_ns
        return self

    @classmethod
    def merged(cls, hists: Iterable["LogHistogram"]) -> "LogHistogram":
        out = cls()
        for hist in hists:
            out.merge(hist)
        return out

    # ------------------------------------------------------------------
    def percentile_ns(self, pct: float) -> float:
        """Estimated percentile (bucket upper bound; NaN when empty)."""
        if self.count == 0:
            return float("nan")
        target = pct / 100.0 * self.count
        cumulative = 0
        for bucket in sorted(self.buckets):
            cumulative += self.buckets[bucket]
            if cumulative >= target:
                return bucket_upper_ns(bucket)
        return bucket_upper_ns(max(self.buckets))

    def percentile_us(self, pct: float) -> float:
        return self.percentile_ns(pct) / 1_000.0

    def mean_us(self) -> float:
        if self.count == 0:
            return float("nan")
        return self.total_ns / self.count / 1_000.0

    def summary(self) -> Dict[str, float]:
        """Same keys as :func:`repro.sim.stats.summarize_ns` (percentiles
        are bucket estimates; count/avg/max are exact)."""
        if self.count == 0:
            nan = float("nan")
            return {"count": 0, "avg_us": nan, "p50_us": nan, "p90_us": nan,
                    "p99_us": nan, "p999_us": nan, "max_us": nan}
        return {
            "count": self.count,
            "avg_us": self.mean_us(),
            "p50_us": self.percentile_us(50),
            "p90_us": self.percentile_us(90),
            "p99_us": self.percentile_us(99),
            "p999_us": self.percentile_us(99.9),
            "max_us": self.max_ns / 1_000.0,
        }

    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict:
        return {"buckets": self.buckets, "count": self.count,
                "total_ns": self.total_ns, "max_ns": self.max_ns}

    def __setstate__(self, state: Dict) -> None:
        self.buckets = state["buckets"]
        self.count = state["count"]
        self.total_ns = state["total_ns"]
        self.max_ns = state["max_ns"]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return (self.buckets == other.buckets and self.count == other.count
                and self.total_ns == other.total_ns
                and self.max_ns == other.max_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LogHistogram n={self.count} "
                f"p99={self.percentile_us(99):.1f}us>")


def merge_recorder_histograms(recorders) -> LogHistogram:
    """Exact log-histogram merge over latency recorders or histograms.

    Accepts any mix of :class:`LogHistogram` and objects with a
    ``samples`` list (``LatencyRecorder``); the result is identical to
    histogramming every underlying sample in one stream.
    """
    out = LogHistogram()
    for item in recorders:
        if isinstance(item, LogHistogram):
            out.merge(item)
        else:
            for ns in item.samples:
                out.record(ns)
    return out


def format_hist_summary(summary: Dict[str, float]) -> List[str]:
    """Fixed row for report tables: count, avg, p50/p99/p999 (µs)."""
    return [str(summary["count"]), f"{summary['avg_us']:.1f}",
            f"{summary['p50_us']:.1f}", f"{summary['p99_us']:.1f}",
            f"{summary['p999_us']:.1f}"]
