"""Observability: op ledger, log histograms, flights, gauge series."""

from repro.obs.hist import LogHistogram, merge_recorder_histograms
from repro.obs.ledger import NULL_LEDGER, NullLedger, OpLedger
from repro.obs.flight import (NULL_FLIGHT, FlightRecorder,
                              NullFlightRecorder)
from repro.obs.timeseries import GaugeSeries

__all__ = ["OpLedger", "NullLedger", "NULL_LEDGER",
           "LogHistogram", "merge_recorder_histograms",
           "FlightRecorder", "NullFlightRecorder", "NULL_FLIGHT",
           "GaugeSeries"]
