"""Observability: the instrumented operation ledger (see ledger.py)."""

from repro.obs.ledger import NULL_LEDGER, NullLedger, OpLedger

__all__ = ["OpLedger", "NullLedger", "NULL_LEDGER"]
