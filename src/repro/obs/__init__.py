"""Observability: op ledger, per-request flight recorder, gauge series."""

from repro.obs.ledger import NULL_LEDGER, NullLedger, OpLedger
from repro.obs.flight import (NULL_FLIGHT, FlightRecorder,
                              NullFlightRecorder)
from repro.obs.timeseries import GaugeSeries

__all__ = ["OpLedger", "NullLedger", "NULL_LEDGER",
           "FlightRecorder", "NullFlightRecorder", "NULL_FLIGHT",
           "GaugeSeries"]
