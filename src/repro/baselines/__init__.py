"""Comparator systems from the paper's evaluation (§6.1).

``caladan``
    The state-of-the-art two-level userspace core scheduler: per-app core
    grants through a 10 µs IOKernel allocation loop, 2 µs steal-then-park
    idling, and the Figure 3 kernel pipeline (5.3 µs) for preemptive core
    reallocation.  ``caladan_dr_l`` / ``caladan_dr_h`` apply the Delay
    Range policy (0.5-1 µs and 1-4 µs).
``arachne``
    User-level threading with a slow (50 ms) per-app core estimator and
    kernel-mediated core grants.
``linux_cfs``
    Plain CFS colocation: L-app at nice -19, B-app at nice 19, requests
    through the kernel network stack.
``ideal``
    The zero-overhead scheduler used as the normalization reference.
``mba`` / ``cgroup_bw``
    The Figure 13b bandwidth-regulation comparators (Intel Memory
    Bandwidth Allocation, cgroup CPU quotas).
"""

from repro.baselines.caladan import CaladanSystem, caladan_dr_l, caladan_dr_h
from repro.baselines.arachne import ArachneSystem
from repro.baselines.linux_cfs import LinuxCfsSystem
from repro.baselines.ideal import IdealSystem
from repro.baselines.mba import MbaRegulator, MBA_EFFECTIVE_FRACTION
from repro.baselines.cgroup_bw import CgroupBandwidthRegulator

__all__ = [
    "CaladanSystem",
    "caladan_dr_l",
    "caladan_dr_h",
    "ArachneSystem",
    "LinuxCfsSystem",
    "IdealSystem",
    "MbaRegulator",
    "MBA_EFFECTIVE_FRACTION",
    "CgroupBandwidthRegulator",
]
