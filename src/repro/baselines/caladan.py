"""Caladan: the two-level comparator (§2.1, Figure 7a).

Policy structure (deliberately conservative, because core reallocation is
expensive for it):

* cores are *owned* by one application at a time; an idle core spins and
  steals inside its own application for ``caladan_steal_before_park_ns``
  (2 µs) before parking back to the IOKernel;
* a parked core is rebound cooperatively (yield + rebind ≈ 2.1 µs,
  Table 1) to the most congested application, else to the B-app;
* when a congested application finds no idle core, it must *preempt* one
  — and that runs the Figure 3 kernel pipeline (ioctl → IPI → trap →
  SIGUSR save → kernel switch → restore, 5.3 µs) and only happens on the
  IOKernel's 10 µs core-allocation tick;
* the Delay Range policy gates grants on queueing delay: cores are added
  only once the app's oldest pending request has waited more than
  ``delay_hi_ns`` (DR-L: 1 µs, DR-H: 4 µs; plain Caladan: > 0).

Construct variants with :func:`caladan_dr_l` / :func:`caladan_dr_h`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.hardware.machine import Core, Machine
from repro.kernel.kschedule import KernelReallocPipeline
from repro.sched import queues
from repro.sched.base import ColocationSystem
from repro.workloads.base import App, Request


class _CoreState:
    __slots__ = ("core", "owner", "kind", "request", "batch_run")

    def __init__(self, core: Core) -> None:
        self.core = core
        self.owner: Optional[App] = None
        #: None | "serve" | "spin" | "B" | "transition"
        self.kind: Optional[str] = None
        self.request: Optional[Request] = None
        self.batch_run = None


class CaladanSystem(ColocationSystem):
    """Caladan with configurable Delay Range."""

    name = "caladan"

    def __init__(self, sim: Simulator, machine: Machine, rngs: RngStreams,
                 worker_cores: Optional[List[Core]] = None,
                 delay_lo_ns: int = 0, delay_hi_ns: int = 0,
                 fast_react: bool = False,
                 bw_cap_app: Optional[str] = None,
                 bw_cap_gbps: Optional[float] = None) -> None:
        super().__init__(sim, machine, rngs, worker_cores)
        #: optional memory-bandwidth cap on one B-app, enforced at the
        #: 10 us allocation-tick granularity by revoking/regranting whole
        #: cores - Caladan's coarse version of Figure 13's regulation
        self.bw_cap_app = bw_cap_app
        self.bw_cap_gbps = bw_cap_gbps
        self._bw_meter = None
        self._bw_throttled = False
        self.delay_lo_ns = delay_lo_ns
        self.delay_hi_ns = delay_hi_ns
        #: the Delay-Range rework also made the IOKernel react to
        #: congestion between allocation ticks; plain Caladan only grants
        #: on the tick itself
        self.fast_react = fast_react
        self.rng = rngs.stream("caladan")
        self.pipeline = KernelReallocPipeline(self.costs,
                                              ledger=self.ledger)
        self._cores: Dict[int, _CoreState] = {
            core.id: _CoreState(core) for core in self.worker_cores
        }
        self._react_pending: Set[str] = set()
        self.reallocations = 0
        self.rebinds = 0
        self.parks = 0
        self._started = False

    # ------------------------------------------------------------------
    @property
    def alloc_interval_ns(self) -> int:
        """IOKernel tick, stretched by its per-core control-plane cost."""
        per_pass = (len(self.worker_cores)
                    * self.costs.caladan_iokernel_per_core_ns)
        return max(self.costs.caladan_core_alloc_interval_ns, per_pass)

    @property
    def control_plane_factor(self) -> float:
        """IOKernel congestion multiplier (1/(1-rho)).

        The IOKernel polls queues AND forwards packets for every managed
        core, costing ~295 ns per core per 10 us tick, so it saturates
        around 34 cores — the Figure 12 knee the paper measures.
        """
        rho = (len(self.worker_cores)
               * self.costs.caladan_iokernel_per_core_ns
               / self.costs.caladan_core_alloc_interval_ns)
        return 1.0 / (1.0 - min(rho, 0.97))

    def start(self) -> None:
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for state in self._cores.values():
            self._grant_idle_core(state, include_batch=True)
        self.sim.post(self.alloc_interval_ns, self._alloc_tick)

    # ------------------------------------------------------------------
    # Arrival path
    # ------------------------------------------------------------------
    def on_arrival(self, app: App, request: Request) -> None:
        # A core spinning inside this app picks the request up directly.
        spinner = queues.first_where(
            self._cores.values(),
            lambda s: s.owner is app and s.kind == "spin")
        if spinner is not None:
            spinner.core.preempt()  # end the spin early
            self._serve(spinner)
            return
        if self.fast_react and app.name not in self._react_pending:
            # Check once the queueing delay can have crossed the range's
            # upper bound (the Delay Range trigger condition).
            self._react_pending.add(app.name)
            react = int(self.costs.caladan_iokernel_react_ns
                        * self.control_plane_factor)
            self.sim.post(react + self.delay_hi_ns,
                          self._grant_check, app)

    def _grant_check(self, app: App) -> None:
        self._react_pending.discard(app.name)
        if not self._congested(app):
            return
        # Grants from the idle pool happen as soon as the IOKernel
        # notices; preemptions wait for the allocation tick.  Like
        # Shenango/Caladan, at most ONE core is added per congestion
        # detection - ramping is gradual by design.
        if self._congested_wants_more(app):
            idle = self._find_idle_core()
            if idle is not None:
                self._rebind(idle, app)

    # ------------------------------------------------------------------
    # IOKernel core-allocation tick
    # ------------------------------------------------------------------
    def _alloc_tick(self) -> None:
        self._enforce_bw_cap()
        for app in self.latency_apps:
            # One additional core per app per tick (gradual ramping).
            if self._congested_wants_more(app):
                idle = self._find_idle_core()
                if idle is not None:
                    self._rebind(idle, app)
                else:
                    victim = self._find_preemption_victim(app)
                    if victim is not None:
                        self._preempt(victim, app)
        for state in self._cores.values():
            if state.kind is None and not state.core.busy:
                self._grant_idle_core(state, include_batch=True)
        self.sim.post(self.alloc_interval_ns, self._alloc_tick)

    def _enforce_bw_cap(self) -> None:
        """Core-granular bandwidth throttling of the capped B-app.

        Caladan can only regulate bandwidth by adding/removing whole
        cores every allocation tick, and a reallocation costs 5.3 us, so
        rapid duty-cycling is off the table: the practical policy is to
        cap the app at floor(budget / per-core-rate) cores.  The
        quantization (a core is ~12 GB/s) is exactly why its regulation
        is coarse compared to VESSEL's (Figure 13).
        """
        if self.bw_cap_app is None or self.bw_cap_gbps is None:
            return
        if self._bw_meter is None:
            from repro.hardware.membus import BandwidthMeter
            self._bw_meter = BandwidthMeter(self.machine.membus,
                                            self.bw_cap_app)
            return
        running = [s for s in self._cores.values()
                   if s.kind == "B" and s.owner is not None
                   and s.owner.name == self.bw_cap_app]
        consumed = self._bw_meter.sample_gbps()
        if running and consumed > 0:
            per_core = consumed / len(running)
            self._bw_per_core = (0.7 * getattr(self, "_bw_per_core", per_core)
                                 + 0.3 * per_core)
        per_core = getattr(self, "_bw_per_core", None)
        if per_core is None or per_core <= 0:
            return
        allowed = int(self.bw_cap_gbps / per_core)
        self._bw_throttled = len(running) >= allowed
        while len(running) > allowed:
            state = running.pop()
            if state.batch_run is not None:
                state.batch_run.preempt()
                state.batch_run = None
            state.owner = None
            state.kind = None
            state.core.set_idle()

    def _congested(self, app: App) -> bool:
        return bool(app.queue) and \
            app.oldest_wait_ns(self.sim.now) > self.delay_hi_ns

    def _congested_wants_more(self, app: App) -> bool:
        if not self._congested(app):
            return False
        active = sum(1 for s in self._cores.values() if s.owner is app)
        return active < min(len(app.queue), len(self.worker_cores))

    def _find_idle_core(self) -> Optional[_CoreState]:
        return queues.first_idle(self._cores.values())

    def _find_preemption_victim(self, requester: App) -> Optional[_CoreState]:
        # Best-effort cores first.
        victim = queues.first_of_kind(self._cores.values(), "B")
        if victim is not None:
            return victim
        # Then a latency core whose app is clearly less congested.
        req_delay = requester.oldest_wait_ns(self.sim.now)
        best = None
        best_delay = None
        for state in self._cores.values():
            if state.kind != "serve" or state.owner is requester:
                continue
            delay = state.owner.oldest_wait_ns(self.sim.now)
            if delay + self.delay_hi_ns < req_delay:
                if best_delay is None or delay < best_delay:
                    best, best_delay = state, delay
        return best

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _grant_idle_core(self, state: _CoreState,
                         include_batch: bool = False) -> None:
        """Rebind an idle core to the most congested L-app.

        B-apps only receive idle cores when ``include_batch`` is set —
        i.e. on the 10 µs allocation tick, not the instant a core parks.
        This is Caladan's actual behaviour and the reason short idle
        windows exist that a returning L-app can reclaim with the cheap
        cooperative rebind instead of the 5.3 µs preemption pipeline.
        """
        congested = [app for app in self.latency_apps
                     if self._congested_wants_more(app)]
        if congested:
            target = max(congested,
                         key=lambda app: app.oldest_wait_ns(self.sim.now))
            self._rebind(state, target)
            return
        if include_batch:
            for app in self.batch_apps:
                if self._bw_throttled and app.name == self.bw_cap_app:
                    continue
                self._rebind(state, app)
                return
        state.owner = None
        state.kind = None
        state.core.set_idle()

    def _rebind(self, state: _CoreState, app: App) -> None:
        """Cooperative rebind of a parked/idle core (Table 1 path)."""
        self.rebinds += 1
        state.owner = app
        state.kind = "transition"
        state.core.run("kernel", self.costs.caladan_park_switch_ns
                       + self.costs.kernel_jitter_ns(self.rng),
                       lambda: self._begin(state))

    def _preempt(self, state: _CoreState, app: App) -> None:
        """Preemptive reallocation: the Figure 3 kernel pipeline."""
        self.reallocations += 1
        if state.kind == "B" and state.batch_run is not None:
            state.batch_run.preempt()
            state.batch_run = None
        elif state.kind == "serve" and state.request is not None:
            # The victim's in-flight request is suspended; its remaining
            # service time returns to the front of its app's queue.
            remaining = state.core.preempt()
            request = state.request
            request.service_ns = max(1, remaining)
            if self.flight.enabled:
                self.flight.mark(request, "preempt", core=state.core.id)
            request.app.queue.appendleft(request)
            state.request = None
        elif state.core.busy:
            state.core.preempt()
        state.owner = app
        state.kind = "transition"
        self.pipeline.run(state.core, lambda: self._begin(state), self.rng)

    def _begin(self, state: _CoreState) -> None:
        app = state.owner
        if app is None:
            state.kind = None
            state.core.set_idle()
            return
        if app.is_latency:
            self._serve(state)
        else:
            state.kind = "B"
            self._run_batch_chunk(state)

    # ------------------------------------------------------------------
    # Latency serving (run-to-completion + steal-spin + park)
    # ------------------------------------------------------------------
    def _serve(self, state: _CoreState) -> None:
        app = state.owner
        request = app.pop_request()
        if request is None:
            # Steal inside the app for 2 µs before parking (Figure 7a).
            state.kind = "spin"
            state.core.run("runtime", self.costs.caladan_steal_before_park_ns,
                           lambda: self._spin_done(state))
            return
        state.kind = "serve"
        state.request = request
        self.begin_service(request, core_id=state.core.id)
        state.core.run(f"app:{app.name}", self.effective_service_ns(request),
                       lambda: self._request_done(state, request))

    def _request_done(self, state: _CoreState, request: Request) -> None:
        state.request = None
        if request.io_wait_ns > 0 and not request.io_done:
            request.io_done = True
            if self.flight.enabled:
                self.flight.mark(request, "io_park")
            self.sim.post(request.io_wait_ns, self._io_complete, request)
            self._serve(state)
            return
        request.app.complete(request, self.sim.now)
        if self.flight.enabled:
            self.flight.on_complete(request)
        self._serve(state)

    def _io_complete(self, request: Request) -> None:
        request.service_ns = max(1, request.post_io_service_ns)
        if self.flight.enabled:
            self.flight.mark(request, "io_done")
        request.app.queue.appendleft(request)
        self.on_arrival(request.app, request)

    def _spin_done(self, state: _CoreState) -> None:
        app = state.owner
        if app.queue:
            self._serve(state)
            return
        # Park: yield the core back to the IOKernel.
        self.parks += 1
        state.kind = "transition"
        state.core.run("kernel", self.costs.caladan_park_yield_ns,
                       lambda: self._parked(state))

    def _parked(self, state: _CoreState) -> None:
        state.owner = None
        state.kind = None
        # The IOKernel notices the park on its next poll pass; under
        # control-plane congestion that takes correspondingly longer.
        delay = int(self.costs.caladan_iokernel_react_ns
                    * (self.control_plane_factor - 1.0))
        if delay <= 0:
            self._grant_idle_core(state, include_batch=False)
        else:
            self.sim.post(delay, self._handoff_parked, state)

    def _handoff_parked(self, state: _CoreState) -> None:
        if state.kind is None and not state.core.busy and state.owner is None:
            self._grant_idle_core(state, include_batch=False)

    # ------------------------------------------------------------------
    # Best-effort chunks
    # ------------------------------------------------------------------
    def _run_batch_chunk(self, state: _CoreState) -> None:
        app = state.owner
        state.batch_run = app.batch_work.start(
            state.core, on_done=lambda: self._batch_chunk_done(state))

    def _batch_chunk_done(self, state: _CoreState) -> None:
        state.batch_run = None
        if state.kind != "B":
            return
        self._run_batch_chunk(state)


def caladan_dr_l(sim: Simulator, machine: Machine, rngs: RngStreams,
                 worker_cores: Optional[List[Core]] = None) -> CaladanSystem:
    """Caladan with Delay Range 0.5-1 µs (good tails, more switching)."""
    system = CaladanSystem(sim, machine, rngs, worker_cores,
                           delay_lo_ns=500, delay_hi_ns=1000,
                           fast_react=True)
    system.name = "caladan-dr-l"
    return system


def caladan_dr_h(sim: Simulator, machine: Machine, rngs: RngStreams,
                 worker_cores: Optional[List[Core]] = None) -> CaladanSystem:
    """Caladan with Delay Range 1-4 µs (fewer grants, higher tails)."""
    system = CaladanSystem(sim, machine, rngs, worker_cores,
                           delay_lo_ns=1000, delay_hi_ns=4000,
                           fast_react=True)
    system.name = "caladan-dr-h"
    return system
