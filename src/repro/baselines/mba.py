"""Intel Memory Bandwidth Allocation (Figure 13b comparator).

MBA throttles a core's memory traffic by inserting delays between
requests.  Its control is *indirect and coarse*: the user programs a
throttling level (10%..100% in steps of 10), but the achieved bandwidth
is a hardware-dependent, non-linear function of that level — published
characterizations (and the paper's Figure 13b) show the effective
bandwidth sitting far above the programmed value at low levels.  The
calibration table below encodes that shape.
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.membus import MemoryBus

#: programmed MBA level (%) -> achieved fraction of full bandwidth
MBA_EFFECTIVE_FRACTION: Dict[int, float] = {
    10: 0.45,
    20: 0.50,
    30: 0.55,
    40: 0.62,
    50: 0.68,
    60: 0.75,
    70: 0.81,
    80: 0.88,
    90: 0.94,
    100: 1.00,
}


class MbaRegulator:
    """Applies an MBA throttling level to one bus tag."""

    def __init__(self, bus: MemoryBus, tag: str, full_rate_gbps: float) -> None:
        if full_rate_gbps <= 0:
            raise ValueError(f"full rate must be positive: {full_rate_gbps}")
        self.bus = bus
        self.tag = tag
        self.full_rate_gbps = full_rate_gbps
        self.level: int = 100

    @staticmethod
    def quantize_level(target_percent: float) -> int:
        """MBA only accepts multiples of 10 in [10, 100]; round to nearest."""
        level = int(round(target_percent / 10.0)) * 10
        return max(10, min(100, level))

    def set_target(self, target_percent: float) -> int:
        """Program the level closest to ``target_percent``; returns it.

        The achieved bandwidth follows MBA_EFFECTIVE_FRACTION, not the
        programmed value — that gap is the inaccuracy Figure 13b shows.
        """
        self.level = self.quantize_level(target_percent)
        achieved_fraction = MBA_EFFECTIVE_FRACTION[self.level]
        self.bus.set_tag_cap(self.tag,
                             self.full_rate_gbps * achieved_fraction)
        return self.level
