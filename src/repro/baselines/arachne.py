"""Arachne: core-aware thread management (§6.1 comparator).

Arachne estimates each application's core requirement from load averaged
over a long window (tens of milliseconds) and acquires/releases cores
through the kernel (~29 µs per transition).  Two consequences the paper's
Figure 9 shows:

* the estimator lags µs-scale bursts, so queues build while the core
  count catches up (latency spikes past 10 ms under bursts);
* overall throughput declines sharply as load rises because grants are
  slow and per-request wakeups go through the kernel.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.hardware.machine import Core, Machine
from repro.sched import queues
from repro.sched.base import ColocationSystem
from repro.workloads.base import App, Request

#: Arachne targets ~80% utilization per granted core ("load factor")
TARGET_LOAD_FACTOR = 0.8


class _CoreState:
    __slots__ = ("core", "owner", "kind", "request", "batch_run")

    def __init__(self, core: Core) -> None:
        self.core = core
        self.owner: Optional[App] = None
        self.kind: Optional[str] = None  # None | "serve" | "idle-held" | "B"
        self.request: Optional[Request] = None
        self.batch_run = None


class ArachneSystem(ColocationSystem):
    """Arachne's core arbiter + per-app estimators."""

    name = "arachne"

    def __init__(self, sim: Simulator, machine: Machine, rngs: RngStreams,
                 worker_cores: Optional[List[Core]] = None) -> None:
        super().__init__(sim, machine, rngs, worker_cores)
        self.rng = rngs.stream("arachne")
        self._cores: Dict[int, _CoreState] = {
            core.id: _CoreState(core) for core in self.worker_cores
        }
        #: current core grant per L-app
        self._grants: Dict[str, int] = {}
        #: busy ns accumulated per L-app in the current estimator window
        self._window_busy: Dict[str, int] = {}
        self._window_start = 0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for app in self.latency_apps:
            self._grants[app.name] = 1
            self._window_busy[app.name] = 0
        self._window_start = self.sim.now
        self._apply_grants()
        self.sim.post(self.costs.arachne_estimator_interval_ns,
                      self._estimate)

    # ------------------------------------------------------------------
    # Estimator
    # ------------------------------------------------------------------
    def _estimate(self) -> None:
        window = self.sim.now - self._window_start
        for app in self.latency_apps:
            busy = self._window_busy.get(app.name, 0)
            self._window_busy[app.name] = 0
            utilization = busy / window if window > 0 else 0.0
            want = max(1, math.ceil(utilization / TARGET_LOAD_FACTOR))
            # Ramp one core at a time (Arachne's hysteresis).
            have = self._grants[app.name]
            if want > have:
                have += 1
            elif want < have:
                have -= 1
            self._grants[app.name] = min(have, len(self.worker_cores))
        self._window_start = self.sim.now
        self._apply_grants()
        self.sim.post(self.costs.arachne_estimator_interval_ns,
                      self._estimate)

    def _apply_grants(self) -> None:
        """Reshape core ownership to match the grants (kernel-mediated)."""
        for app in self.latency_apps:
            owned = [s for s in self._cores.values() if s.owner is app]
            target = self._grants[app.name]
            for state in owned[target:]:
                self._release(state)
            deficit = target - len(owned)
            while deficit > 0:
                state = queues.first_where(
                    self._cores.values(),
                    lambda s: s.owner is None or s.kind == "B")
                if state is None:
                    break
                self._acquire(state, app)
                deficit -= 1
        # Whatever is left goes to batch apps.
        for state in self._cores.values():
            if state.owner is None and not state.core.busy:
                self._grant_to_batch(state)

    def _acquire(self, state: _CoreState, app: App) -> None:
        if state.kind == "B" and state.batch_run is not None:
            state.batch_run.preempt()
            state.batch_run = None
        elif state.core.busy:
            state.core.preempt()
        state.owner = app
        state.kind = "transition"
        state.core.run("kernel", self.costs.arachne_core_grant_ns,
                       lambda: self._begin(state))

    def _release(self, state: _CoreState) -> None:
        if state.kind == "serve":
            return  # finish the current request first; reaped next window
        if state.core.busy:
            state.core.preempt()
        state.owner = None
        state.kind = None
        state.core.set_idle()

    def _grant_to_batch(self, state: _CoreState) -> None:
        for app in self.batch_apps:
            state.owner = app
            state.kind = "transition"
            state.core.run("kernel", self.costs.arachne_core_grant_ns,
                           lambda: self._begin(state))
            return
        state.core.set_idle()

    def _begin(self, state: _CoreState) -> None:
        app = state.owner
        if app is None:
            state.kind = None
            state.core.set_idle()
            return
        if app.is_latency:
            self._serve(state)
        else:
            state.kind = "B"
            self._run_batch_chunk(state)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def on_arrival(self, app: App, request: Request) -> None:
        # Wake an idle-held core of this app through the kernel.
        state = queues.first_where(
            self._cores.values(),
            lambda s: s.owner is app and s.kind == "idle-held")
        if state is not None:
            state.kind = "transition"
            state.core.run("kernel", self.costs.arachne_wake_ns,
                           lambda s=state: self._serve(s))

    def _serve(self, state: _CoreState) -> None:
        app = state.owner
        request = app.pop_request()
        if request is None:
            # Arachne blocks the worker on a kernel futex; the core stays
            # granted to the app (idle from the machine's perspective).
            state.kind = "idle-held"
            state.core.set_idle()
            return
        state.kind = "serve"
        state.request = request
        self.begin_service(request, core_id=state.core.id)
        self._window_busy[app.name] = (
            self._window_busy.get(app.name, 0) + request.service_ns
        )
        state.core.run(f"app:{app.name}", self.effective_service_ns(request),
                       lambda: self._request_done(state, request))

    def _request_done(self, state: _CoreState, request: Request) -> None:
        request.app.complete(request, self.sim.now)
        if self.flight.enabled:
            self.flight.on_complete(request)
        state.request = None
        self._serve(state)

    # ------------------------------------------------------------------
    def _run_batch_chunk(self, state: _CoreState) -> None:
        app = state.owner
        state.batch_run = app.batch_work.start(
            state.core, on_done=lambda: self._batch_chunk_done(state))

    def _batch_chunk_done(self, state: _CoreState) -> None:
        state.batch_run = None
        if state.kind != "B":
            return
        self._run_batch_chunk(state)
