"""The zero-overhead scheduler.

"An ideal CPU scheduler should ensure that L-apps always have sufficient
CPU cycles, and any unused CPU cycles of L-apps should be reallocated to
B-apps immediately, where the reallocation itself causes zero overhead"
(§2.1).  This system implements exactly that and is the normalization
reference for the total-normalized-throughput plots.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.hardware.machine import Core, Machine
from repro.sched.base import ColocationSystem
from repro.workloads.base import App, Request


class _CoreState:
    __slots__ = ("core", "kind", "batch_run", "batch_app")

    def __init__(self, core: Core) -> None:
        self.core = core
        self.kind: Optional[str] = None  # None | "L" | "B"
        self.batch_run = None
        self.batch_app: Optional[App] = None


class IdealSystem(ColocationSystem):
    """Instant, free core reallocation."""

    name = "ideal"

    def __init__(self, sim: Simulator, machine: Machine, rngs: RngStreams,
                 worker_cores: Optional[List[Core]] = None) -> None:
        if worker_cores is None:
            worker_cores = machine.cores  # no scheduler core needed
        super().__init__(sim, machine, rngs, worker_cores)
        self._cores: Dict[int, _CoreState] = {
            core.id: _CoreState(core) for core in self.worker_cores
        }
        #: pending requests across all L-apps, in arrival order
        self._pending: Deque[Request] = deque()
        self._batch_rr = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for state in self._cores.values():
            self._fill(state)

    # ------------------------------------------------------------------
    def on_arrival(self, app: App, request: Request) -> None:
        popped = app.queue.pop()  # submit() just appended this request
        assert popped is request
        self._pending.append(request)
        state = self._find_idle() or self._find_batch()
        if state is not None:
            if state.kind == "B" and state.batch_run is not None:
                state.batch_run.preempt()  # free, instant
                state.batch_run = None
                state.batch_app = None
            state.kind = None
            self._fill(state)

    def _find_idle(self) -> Optional[_CoreState]:
        for state in self._cores.values():
            if state.kind is None and not state.core.busy:
                return state
        return None

    def _find_batch(self) -> Optional[_CoreState]:
        for state in self._cores.values():
            if state.kind == "B":
                return state
        return None

    # ------------------------------------------------------------------
    def _fill(self, state: _CoreState) -> None:
        if self._pending:
            request = self._pending.popleft()
            state.kind = "L"
            self.begin_service(request, core_id=state.core.id)
            state.core.run(f"app:{request.app.name}",
                           self.effective_service_ns(request),
                           lambda: self._done(state, request))
            return
        if self.batch_apps:
            app = self.batch_apps[self._batch_rr % len(self.batch_apps)]
            self._batch_rr += 1
            state.kind = "B"
            state.batch_app = app
            state.batch_run = app.batch_work.start(
                state.core, on_done=lambda: self._batch_done(state))
            return
        state.kind = None
        state.core.set_idle()

    def _done(self, state: _CoreState, request: Request) -> None:
        request.app.complete(request, self.sim.now)
        if self.flight.enabled:
            self.flight.on_complete(request)
        state.kind = None
        self._fill(state)

    def _batch_done(self, state: _CoreState) -> None:
        state.batch_run = None
        state.batch_app = None
        if state.kind != "B":
            return
        state.kind = None
        self._fill(state)
