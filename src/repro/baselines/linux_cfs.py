"""Plain Linux colocation under CFS (§6.1 comparator).

The L-app runs as a normal multi-threaded server at nice -19 using the
kernel network stack (so every request pays the softirq/epoll/syscall
path); the B-app runs at nice 19 (the paper says nice 20; the kernel
clamps to 19).  Scheduling is the real CFS model from
``repro.kernel.cfs``; the millisecond-scale reaction time it exhibits for
frequently-sleeping server threads is what produces the paper's >10 ms
P999 ("Linux CFS always grants cores to execute B-app ... because
Memcached's worker threads suspend CPU cores frequently").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.hardware.machine import Core, Machine
from repro.kernel.cfs import CfsScheduler, CfsTask, Chunk
from repro.kernel.kprocess import KProcess, KThread, ThreadState
from repro.sched import queues
from repro.sched.base import ColocationSystem
from repro.workloads.base import App, Request

L_APP_NICE = -19
B_APP_NICE = 19
B_CHUNK_NS = 200_000


class _WorkerTask(CfsTask):
    """One L-app server thread: kernel-net chunk, then the service chunk."""

    def __init__(self, system: "LinuxCfsSystem", app: App) -> None:
        self.system = system
        self.app = app
        self._staged: Optional[Request] = None

    def next_chunk(self) -> Optional[Chunk]:
        if self._staged is not None:
            request = self._staged
            self._staged = None
            self.system.begin_service(request)
            return Chunk(self.system.effective_service_ns(request),
                         f"app:{self.app.name}",
                         lambda: self._complete(request))
        request = self.app.pop_request()
        if request is None:
            return None  # sleep on epoll
        self._staged = request
        # Kernel network stack + syscall surface per request.
        return Chunk(self.system.costs.kernel_net_ns, "kernel")

    def _complete(self, request: Request) -> None:
        request.app.complete(request, self.system.sim.now)
        if self.system.flight.enabled:
            self.system.flight.on_complete(request)


class _BatchTask(CfsTask):
    """A best-effort thread: an endless stream of compute chunks."""

    def __init__(self, app: App, chunk_ns: int = B_CHUNK_NS) -> None:
        self.app = app
        self.chunk_ns = chunk_ns

    def next_chunk(self) -> Optional[Chunk]:
        def done() -> None:
            self.app.useful_ns += self.chunk_ns
        return Chunk(self.chunk_ns, f"app:{self.app.name}", done)


class LinuxCfsSystem(ColocationSystem):
    """The CFS baseline."""

    name = "linux-cfs"

    def __init__(self, sim: Simulator, machine: Machine, rngs: RngStreams,
                 worker_cores: Optional[List[Core]] = None) -> None:
        # CFS needs no dedicated scheduler core; by default use all cores.
        if worker_cores is None:
            worker_cores = machine.cores
        super().__init__(sim, machine, rngs, worker_cores)
        self.cfs = CfsScheduler(sim, self.worker_cores, self.costs,
                                ledger=self.ledger)
        self._processes: Dict[str, KProcess] = {}
        self._workers: Dict[str, List[KThread]] = {}
        self._wake_rr: Dict[str, int] = {}
        self._started = False

    # ------------------------------------------------------------------
    def add_app(self, app: App) -> None:
        super().add_app(app)
        nice = L_APP_NICE if app.is_latency else B_APP_NICE
        process = KProcess(app.name, nice=nice)
        self._processes[app.name] = process
        threads: List[KThread] = []
        for i in range(len(self.worker_cores)):
            thread = process.spawn_thread(f"{app.name}/w{i}")
            if app.is_latency:
                task = _WorkerTask(self, app)
            else:
                task = _BatchTask(app)
            self.cfs.register(thread, task)
            threads.append(thread)
        self._workers[app.name] = threads
        self._wake_rr[app.name] = 0

    def start(self) -> None:
        if self._started:
            raise RuntimeError("system already started")
        self._started = True
        for app in self.batch_apps:
            for thread in self._workers[app.name]:
                self.cfs.wake(thread)

    # ------------------------------------------------------------------
    def on_arrival(self, app: App, request: Request) -> None:
        """The softirq path wakes one sleeping server thread."""
        threads = self._workers[app.name]
        index = queues.rr_scan(threads, self._wake_rr[app.name],
                               lambda t: t.state is ThreadState.SLEEPING)
        if index is not None:
            self._wake_rr[app.name] = (index + 1) % len(threads)
            self.cfs.wake(threads[index])
        # else: all workers already runnable; the queue drains as they run.
