"""cgroup CPU-quota bandwidth regulation (Figure 13b comparator).

Linux can only regulate a tenant's memory bandwidth indirectly, by
capping its CPU time (``cpu.max`` quota/period).  Two granularity
problems make the result inaccurate at the timescales Figure 13b sweeps:

* runtime is handed to the throttled group in multiples of the CFS
  bandwidth slice (``sched_cfs_bandwidth_slice``, 5 ms by default), so
  the enforced runtime per period is the quota rounded *up* to a slice —
  at small quotas the group receives far more time (and thus bandwidth)
  than asked;
* unthrottling happens on a millisecond timer, adding further slack.

The regulator below duty-cycles a membench thread on one core with that
slice-quantized quota, so the measured bandwidth overshoots exactly the
way the kernel's does.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.hardware.machine import Core
from repro.workloads.membench import MembenchWork

DEFAULT_PERIOD_NS = 20_000_000        # cpu.max period (20 ms)
BANDWIDTH_SLICE_NS = 5_000_000        # sched_cfs_bandwidth_slice
UNTHROTTLE_JITTER_NS = 1_000_000      # 1 ms unthrottle-timer granularity


class CgroupBandwidthRegulator:
    """Runs one membench thread under a cgroup CPU quota."""

    def __init__(self, sim: Simulator, core: Core, work: MembenchWork,
                 target_fraction: float,
                 period_ns: int = DEFAULT_PERIOD_NS,
                 slice_ns: int = BANDWIDTH_SLICE_NS) -> None:
        if not 0.0 < target_fraction <= 1.0:
            raise ValueError(f"target fraction out of range: {target_fraction}")
        self.sim = sim
        self.core = core
        self.work = work
        self.target_fraction = target_fraction
        self.period_ns = period_ns
        self.slice_ns = slice_ns
        self._run = None
        self._period_start = 0
        self._ran_this_period = 0
        self._running_since: Optional[int] = None
        self.throttle_events = 0

    # ------------------------------------------------------------------
    def effective_runtime_ns(self) -> int:
        """Quota rounded up to whole bandwidth slices (the overshoot)."""
        quota = int(self.target_fraction * self.period_ns)
        slices = (quota + self.slice_ns - 1) // self.slice_ns
        return min(self.period_ns, slices * self.slice_ns)

    def start(self) -> None:
        self._begin_period()

    # ------------------------------------------------------------------
    def _begin_period(self) -> None:
        self._period_start = self.sim.now
        self._ran_this_period = 0
        if self._run is not None and self._run.active:
            # Still running across the period boundary: fresh budget.
            self._running_since = self.sim.now
            self._schedule_quota_check()
        else:
            self._resume()
        self.sim.post(self.period_ns, self._begin_period)

    def _resume(self) -> None:
        if self._run is not None and self._run.active:
            return
        self._running_since = self.sim.now
        self._run = self.work.start(self.core, on_done=self._iteration_done)
        self._schedule_quota_check()

    def _schedule_quota_check(self) -> None:
        budget = self.effective_runtime_ns() - self._ran_this_period
        if budget <= 0:
            self._throttle()
            return
        self.sim.post(budget, self._quota_check)

    def _quota_check(self) -> None:
        if self._running_since is None:
            return
        self._settle_runtime()
        if self._ran_this_period >= self.effective_runtime_ns():
            self._throttle()

    def _settle_runtime(self) -> None:
        if self._running_since is not None:
            self._ran_this_period += self.sim.now - self._running_since
            self._running_since = self.sim.now

    def _throttle(self) -> None:
        self.throttle_events += 1
        self._settle_runtime()
        self._running_since = None
        if self._run is not None and self._run.active:
            self._run.preempt()
        self._run = None
        # Unthrottled at the next period boundary (plus timer slack, which
        # we fold into the next period's start naturally).

    def _iteration_done(self) -> None:
        if self._running_since is None:
            return  # throttled exactly at the boundary
        self._settle_runtime()
        if self._ran_this_period >= self.effective_runtime_ns():
            self._throttle()
            return
        self._resume()
