"""Silo stressed with TPC-C (§6.1).

"TPC-C has high service time variability (20 µs at median and 280 µs at
the 99.9th percentile)."  A lognormal with median 20 µs and sigma chosen
so that P999 = 280 µs reproduces exactly those two quantiles:
sigma = ln(280/20) / z(0.999) = ln(14) / 3.0902 ≈ 0.854.
"""

from __future__ import annotations

import math
import random

from repro.workloads.base import App, AppKind
from repro.workloads.synthetic import LognormalService

SILO_MEDIAN_SERVICE_NS = 20_000
SILO_P999_SERVICE_NS = 280_000
_Z_999 = 3.0902
SILO_SIGMA = math.log(SILO_P999_SERVICE_NS / SILO_MEDIAN_SERVICE_NS) / _Z_999


def silo_service_sampler(rng: random.Random) -> LognormalService:
    return LognormalService(median_ns=SILO_MEDIAN_SERVICE_NS,
                            sigma=SILO_SIGMA, rng=rng)


def silo_app(name: str = "silo") -> App:
    sampler = LognormalService(SILO_MEDIAN_SERVICE_NS, SILO_SIGMA,
                               random.Random(0))
    return App(name, AppKind.LATENCY, mean_service_ns=sampler.mean_ns)
