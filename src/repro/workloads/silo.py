"""Silo stressed with TPC-C (§6.1).

"TPC-C has high service time variability (20 µs at median and 280 µs at
the 99.9th percentile)."  A lognormal with median 20 µs and sigma chosen
so that P999 = 280 µs reproduces exactly those two quantiles:
sigma = ln(280/20) / z(0.999) = ln(14) / 3.0902 ≈ 0.854.
"""

from __future__ import annotations

import math
import random

from repro.workloads.base import App, AppKind
from repro.workloads.synthetic import LognormalService

SILO_MEDIAN_SERVICE_NS = 20_000
SILO_P999_SERVICE_NS = 280_000
_Z_999 = 3.0902
SILO_SIGMA = math.log(SILO_P999_SERVICE_NS / SILO_MEDIAN_SERVICE_NS) / _Z_999


def silo_service_sampler(rng: random.Random) -> LognormalService:
    return LognormalService(median_ns=SILO_MEDIAN_SERVICE_NS,
                            sigma=SILO_SIGMA, rng=rng)


class TpccPayloadSampler:
    """(bytes_in, bytes_out) for TPC-C transactions over the wire.

    A transaction request ships its parameters (warehouse/district ids
    plus 5-15 order lines for new-order, ~100-500 B total); the response
    carries the result rows — new-order and stock-level replies run to a
    couple of kilobytes, payment/delivery acks are small.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def __call__(self) -> tuple:
        bytes_in = 96 + self.rng.randint(0, 416)
        if self.rng.random() < 0.55:          # result-heavy transactions
            bytes_out = 512 + self.rng.randint(0, 1536)
        else:                                  # short acks
            bytes_out = 64 + self.rng.randint(0, 192)
        return bytes_in, bytes_out


def silo_app(name: str = "silo") -> App:
    sampler = LognormalService(SILO_MEDIAN_SERVICE_NS, SILO_SIGMA,
                               random.Random(0))
    return App(name, AppKind.LATENCY, mean_service_ns=sampler.mean_ns)
