"""A storage-backed latency app (exercises §5.2.5 + §4.4 park-on-block).

Models a RocksDB-like service: every request parses and looks up in
memory (CPU phase 1); a fraction of requests miss the cache and read a
block from an NVMe-class device (the thread parks for ~10 µs while the
IO is in flight), then finish with a second CPU phase.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.engine import Simulator
from repro.workloads.base import App, AppKind, OpenLoopSource, Request
from repro.workloads.synthetic import LognormalService

DEFAULT_CPU1_NS = 1200
DEFAULT_CPU2_NS = 800
DEFAULT_IO_MISS_FRACTION = 0.2
DEFAULT_IO_MEDIAN_NS = 10_000
DEFAULT_IO_SIGMA = 0.35


def storage_app(name: str = "rocksdb") -> App:
    mean = DEFAULT_CPU1_NS + DEFAULT_IO_MISS_FRACTION * DEFAULT_CPU2_NS
    return App(name, AppKind.LATENCY, mean_service_ns=mean)


class StorageRequestSource(OpenLoopSource):
    """Open-loop source emitting requests that may park on storage IO."""

    def __init__(self, sim: Simulator, app: App, submit, rate_mops: float,
                 rng: random.Random,
                 miss_fraction: float = DEFAULT_IO_MISS_FRACTION,
                 cpu1_ns: int = DEFAULT_CPU1_NS,
                 cpu2_ns: int = DEFAULT_CPU2_NS,
                 io_median_ns: int = DEFAULT_IO_MEDIAN_NS,
                 connections: int = 1,
                 stop_ns: Optional[int] = None) -> None:
        if not 0.0 <= miss_fraction <= 1.0:
            raise ValueError(f"miss_fraction out of range: {miss_fraction}")
        self.miss_fraction = miss_fraction
        self.cpu1_ns = cpu1_ns
        self.cpu2_ns = cpu2_ns
        self._io_sampler = LognormalService(io_median_ns, DEFAULT_IO_SIGMA,
                                            rng)
        self._miss_rng = rng
        super().__init__(sim, app, submit, rate_mops,
                         service_sampler=lambda: cpu1_ns, rng=rng,
                         connections=connections, stop_ns=stop_ns)
        self.io_requests = 0

    def _tick(self) -> None:
        if self.stop_ns is not None and self.sim.now >= self.stop_ns:
            return
        request = Request(self.app, self.sim.now, self.cpu1_ns,
                          self.generated % self.connections)
        if self._miss_rng.random() < self.miss_fraction:
            request.io_wait_ns = self._io_sampler()
            request.post_io_service_ns = self.cpu2_ns
            self.io_requests += 1
        self.generated += 1
        self.submit(request)
        gap = max(1, int(self.rng.expovariate(1.0 / self.mean_gap_ns)))
        self.sim.post(gap, self._tick)
