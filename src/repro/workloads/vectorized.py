"""Batch service-time draws, integer-identical to the scalar samplers.

``repro.sim.vectorized`` serves the raw uniform stream in numpy blocks;
this module replays each sampler's *call protocol* on top of it — the
GET/SET coin before the lognormal draw, the rejection loop inside
``normalvariate`` — so a batch of ``n`` draws consumes the ``svc/*``
stream exactly as ``n`` scalar calls would and returns the same
integers.  The fluid engine pre-draws whole runs through here; the
equivalence tests pin every sampler kind across seeds.
"""

from __future__ import annotations

from typing import List

from repro.sim.vectorized import BufferedUniforms
from repro.workloads.memcached import _GET_FRACTION, UsrServiceSampler
from repro.workloads.synthetic import (
    BimodalService,
    ConstantService,
    ExponentialService,
    LognormalService,
)


def batch_services(sampler, n: int) -> List[int]:
    """``[sampler() for _ in range(n)]``, drawn through numpy blocks.

    Raises ``TypeError`` for sampler kinds without a registered replay —
    callers (the fluid eligibility check) treat that as "fall back to
    the exact engine", never as "approximate the draws".
    """
    if isinstance(sampler, ConstantService):
        return [sampler.service_ns] * n
    if isinstance(sampler, UsrServiceSampler):
        return _batch_usr(sampler, n)
    if isinstance(sampler, LognormalService):
        buf = BufferedUniforms(sampler.rng)
        mu, sigma = sampler.mu, sampler.sigma
        return [max(1, int(buf.lognormvariate(mu, sigma)))
                for _ in range(n)]
    if isinstance(sampler, BimodalService):
        buf = BufferedUniforms(sampler.rng)
        fast, slow, frac = (sampler.fast_ns, sampler.slow_ns,
                            sampler.slow_fraction)
        return [slow if buf.u() < frac else fast for _ in range(n)]
    if isinstance(sampler, ExponentialService):
        buf = BufferedUniforms(sampler.rng)
        lambd = 1.0 / sampler.mean_ns
        return [max(1, int(buf.expovariate(lambd))) for _ in range(n)]
    raise TypeError(f"no batch replay for sampler {type(sampler).__name__}")


def _batch_usr(sampler: UsrServiceSampler, n: int) -> List[int]:
    # The coin and both lognormals share one stream; replay in call order.
    buf = BufferedUniforms(sampler.rng)
    get_mu, get_sigma = sampler._get.mu, sampler._get.sigma
    set_mu, set_sigma = sampler._set.mu, sampler._set.sigma
    out: List[int] = []
    append = out.append
    for _ in range(n):
        if buf.u() < _GET_FRACTION:
            append(max(1, int(buf.lognormvariate(get_mu, get_sigma))))
        else:
            append(max(1, int(buf.lognormvariate(set_mu, set_sigma))))
    return out
