"""Application and request abstractions shared by every scheduler system.

An :class:`App` is what a scheduling system colocates.  Latency apps
receive :class:`Request` objects from an open-loop source and expose a
latency recorder; batch apps expose a work generator and count the useful
nanoseconds they manage to harvest.  Both are deliberately scheduler
agnostic: the same app objects run under VESSEL, Caladan, Arachne and
CFS so the comparison is apples-to-apples.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Optional

from repro.sim.engine import Simulator
from repro.sim.stats import Counter, LatencyRecorder


class AppKind(enum.Enum):
    LATENCY = "latency"   #: L-app: open-loop requests, tail-latency SLO
    BATCH = "batch"       #: B-app: harvests whatever cycles are left


class Request:
    """One open-loop request.

    Requests may block mid-service on a device: ``io_wait_ns`` > 0 means
    the serving thread parks after the first CPU phase and a second CPU
    phase of ``post_io_service_ns`` runs when the IO completes (§4.4 /
    §5.2.5).  Plain requests leave both at zero.

    Network integration (``repro.net``): ``client_send_ns`` is when the
    client machine put the request on the wire — distinct from
    ``arrival_ns``, which the NIC restamps to the *server* arrival time —
    so inbound link/NIC queueing is part of the measured latency.
    ``bytes_in``/``bytes_out`` are the request/response payload sizes the
    link charges serialization for.  ``on_complete`` is the response hook
    the client installs (fires from :meth:`App.complete`).  All of these
    stay at their defaults when no network is configured, preserving the
    direct-submit behaviour.
    """

    __slots__ = ("app", "arrival_ns", "service_ns", "conn_id", "start_ns",
                 "io_wait_ns", "post_io_service_ns", "io_done",
                 "client_send_ns", "bytes_in", "bytes_out", "on_complete",
                 "net_token", "flight")

    def __init__(self, app: "App", arrival_ns: int, service_ns: int,
                 conn_id: int = 0) -> None:
        self.app = app
        self.arrival_ns = arrival_ns
        self.service_ns = service_ns
        self.conn_id = conn_id
        self.start_ns: Optional[int] = None
        self.io_wait_ns = 0
        self.post_io_service_ns = 0
        self.io_done = False
        self.client_send_ns: Optional[int] = None
        self.bytes_in = 0
        self.bytes_out = 0
        self.on_complete = None
        #: opaque client-side identity (shared across retransmissions)
        self.net_token = None
        #: lifecycle marks list, created by an enabled FlightRecorder
        self.flight = None

    def latency_ns(self, completion_ns: int) -> int:
        if self.client_send_ns is not None:
            return completion_ns - self.client_send_ns
        return completion_ns - self.arrival_ns


class App:
    """An application known to a scheduling system."""

    def __init__(self, name: str, kind: AppKind,
                 mean_service_ns: float = 0.0,
                 batch_work: Optional[object] = None) -> None:
        self.name = name
        self.kind = kind
        #: used for capacity normalization of L-apps
        self.mean_service_ns = mean_service_ns
        #: work generator for batch apps (LinpackWork / MembenchWork / ...)
        self.batch_work = batch_work
        # Measurements
        self.offered = Counter(f"{name}/offered")
        self.completed = Counter(f"{name}/completed")
        self.latency = LatencyRecorder(f"{name}/latency")
        #: server-side queueing delay (arrival to first service start)
        self.queue_wait = LatencyRecorder(f"{name}/queue_wait")
        #: pending requests, oldest first (the dataplane/NIC queue)
        self.queue: Deque[Request] = deque()
        #: nanoseconds of useful batch work executed (B-apps)
        self.useful_ns = 0

    # ------------------------------------------------------------------
    @property
    def is_latency(self) -> bool:
        return self.kind is AppKind.LATENCY

    def enqueue(self, request: Request) -> None:
        self.offered.add()
        self.queue.append(request)

    def pop_request(self) -> Optional[Request]:
        if not self.queue:
            return None
        return self.queue.popleft()

    def oldest_wait_ns(self, now: int) -> int:
        """Queueing delay signal: age of the oldest pending request."""
        if not self.queue:
            return 0
        return now - self.queue[0].arrival_ns

    def complete(self, request: Request, now: int) -> None:
        self.completed.add()
        self.latency.record(request.latency_ns(now))
        if request.on_complete is not None:
            request.on_complete(request, now)

    def reset_measurements(self) -> None:
        """Drop warmup-phase measurements (queue state is preserved)."""
        self.offered.clear()
        self.completed.clear()
        self.latency.clear()
        self.queue_wait.clear()
        self.useful_ns = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<App {self.name} {self.kind.value}>"


class OpenLoopSource:
    """Poisson open-loop request generator for one L-app.

    ``submit`` is the system's intake (it must eventually run the request
    on some core); the source never waits for completions — exactly like
    the paper's client machines.
    """

    def __init__(self, sim: Simulator, app: App, submit: Callable[[Request], None],
                 rate_mops: float, service_sampler: Callable[[], int],
                 rng, connections: int = 1,
                 start_ns: int = 0, stop_ns: Optional[int] = None) -> None:
        if rate_mops < 0:
            raise ValueError(f"negative rate {rate_mops}")
        self.sim = sim
        self.app = app
        self.submit = submit
        self.rate_mops = rate_mops
        self.service_sampler = service_sampler
        self.rng = rng
        self.connections = max(1, connections)
        self.stop_ns = stop_ns
        self.generated = 0
        if rate_mops > 0:
            sim.at(start_ns, self._tick)

    @property
    def mean_gap_ns(self) -> float:
        # rate in Mops/s == ops/µs; gap in ns = 1000 / rate
        return 1000.0 / self.rate_mops

    def stop(self) -> None:
        """Stop generating as of now (the pending tick self-cancels)."""
        self.stop_ns = self.sim.now

    def _tick(self) -> None:
        # Hot path: one call per generated request across every sweep.
        # ``1.0 / (1000.0 / rate)`` repeats mean_gap_ns's exact float ops
        # so the drawn gaps stay bit-identical to the property version.
        sim = self.sim
        if self.stop_ns is not None and sim.now >= self.stop_ns:
            return
        request = Request(
            app=self.app,
            arrival_ns=sim.now,
            service_ns=self.service_sampler(),
            conn_id=self.generated % self.connections,
        )
        self.generated += 1
        self.submit(request)
        gap = max(1, int(self.rng.expovariate(1.0 / (1000.0 / self.rate_mops))))
        sim.post(gap, self._tick)


class BurstySource(OpenLoopSource):
    """Markov-modulated Poisson source: alternating calm/burst phases.

    Models the µs-scale burstiness of datacenter load (§1): during a
    burst the instantaneous rate is ``burst_factor`` times the base rate;
    phase durations are exponential with the given means.  The long-run
    average rate equals ``rate_mops`` (the base rate is solved for).
    """

    def __init__(self, sim: Simulator, app: App, submit, rate_mops: float,
                 service_sampler, rng, connections: int = 1,
                 burst_factor: float = 4.0,
                 calm_mean_ns: int = 80_000, burst_mean_ns: int = 20_000,
                 start_ns: int = 0, stop_ns: Optional[int] = None) -> None:
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1: {burst_factor}")
        total = calm_mean_ns + burst_mean_ns
        # avg = base*(calm + factor*burst)/total  ==  rate_mops
        base = rate_mops * total / (calm_mean_ns + burst_factor * burst_mean_ns)
        self.burst_factor = burst_factor
        self.calm_mean_ns = calm_mean_ns
        self.burst_mean_ns = burst_mean_ns
        self._in_burst = False
        self._base_rate = base
        super().__init__(sim, app, submit, base, service_sampler, rng,
                         connections, start_ns, stop_ns)
        if rate_mops > 0:
            sim.at(start_ns + calm_mean_ns, self._toggle_phase)

    def _toggle_phase(self) -> None:
        self._in_burst = not self._in_burst
        self.rate_mops = self._base_rate * (
            self.burst_factor if self._in_burst else 1.0
        )
        mean = self.burst_mean_ns if self._in_burst else self.calm_mean_ns
        duration = max(1, int(self.rng.expovariate(1.0 / mean)))
        if self.stop_ns is None or self.sim.now < self.stop_ns:
            self.sim.post(duration, self._toggle_phase)
