"""Workload generators matching the paper's evaluation (§6.1).

Latency-critical applications (L-apps):

``memcached``
    Facebook USR-like key-value traffic: ~1 µs mean service time,
    read-heavy, open-loop Poisson (optionally bursty) arrivals.
``silo``
    TPC-C-like OLTP: heavy-tailed service times (20 µs median,
    ~280 µs P999).

Best-effort applications (B-apps):

``linpack``
    CPU-bound floating-point batch work; its throughput is the CPU time
    it harvests.
``membench``
    Alternating memory-streaming and compute phases driving the shared
    memory bus (Figure 13).
``objcopy``
    The Figure 11 object-copy workload, driving the cache simulator.

``base`` defines the app/request abstractions and the open-loop source;
``synthetic`` provides the service-time distributions.
"""

from repro.workloads.base import (
    App,
    AppKind,
    Request,
    OpenLoopSource,
    BurstySource,
)
from repro.workloads.synthetic import (
    ConstantService,
    ExponentialService,
    LognormalService,
    BimodalService,
)
from repro.workloads.memcached import memcached_app, MEMCACHED_MEAN_SERVICE_NS
from repro.workloads.silo import silo_app, SILO_MEDIAN_SERVICE_NS
from repro.workloads.linpack import linpack_app, LinpackWork
from repro.workloads.membench import membench_app, MembenchWork
from repro.workloads.objcopy import ObjCopyApp

__all__ = [
    "App",
    "AppKind",
    "Request",
    "OpenLoopSource",
    "BurstySource",
    "ConstantService",
    "ExponentialService",
    "LognormalService",
    "BimodalService",
    "memcached_app",
    "MEMCACHED_MEAN_SERVICE_NS",
    "silo_app",
    "SILO_MEDIAN_SERVICE_NS",
    "linpack_app",
    "LinpackWork",
    "membench_app",
    "MembenchWork",
    "ObjCopyApp",
]
