"""Linpack: the CPU-bound best-effort application (§6.1).

A parallel floating-point benchmark; its "throughput" is simply how much
CPU time it harvests, so the work model is an endless supply of
fixed-size compute chunks whose executed nanoseconds accrue to
``app.useful_ns``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hardware.machine import Core
from repro.workloads.base import App, AppKind

DEFAULT_CHUNK_NS = 100_000  # 100 µs of compute per chunk


class BatchRun:
    """Handle to an in-flight batch chunk; systems preempt through it."""

    def __init__(self, core: Core, work: "LinpackWork") -> None:
        self.core = core
        self.work = work
        self.started = core.sim.now
        self.active = True

    def preempt(self) -> None:
        """Stop the chunk now; partial progress still counts."""
        if not self.active:
            return
        self.active = False
        elapsed = self.core.sim.now - self.started
        self.core.preempt()
        self.work.app.useful_ns += max(0, elapsed)


class LinpackWork:
    """Endless compute chunks for one B-app."""

    def __init__(self, app: App, chunk_ns: int = DEFAULT_CHUNK_NS) -> None:
        if chunk_ns <= 0:
            raise ValueError(f"chunk must be positive: {chunk_ns}")
        self.app = app
        self.chunk_ns = chunk_ns

    def start(self, core: Core,
              on_done: Optional[Callable[[], None]] = None) -> BatchRun:
        """Run one chunk on ``core``; ``on_done`` fires if not preempted."""
        run = BatchRun(core, self)

        def _complete() -> None:
            run.active = False
            self.app.useful_ns += self.chunk_ns
            if on_done is not None:
                on_done()

        core.run(f"app:{self.app.name}", self.chunk_ns, _complete)
        return run


def linpack_app(name: str = "linpack",
                chunk_ns: int = DEFAULT_CHUNK_NS) -> App:
    app = App(name, AppKind.BATCH)
    app.batch_work = LinpackWork(app, chunk_ns)
    return app
