"""membench: the memory-intensive best-effort application (§6.1).

"Continually repeats two phases, memory access and calculation, to
simulate the behavior of current data-processing applications."  The
memory phase streams a block through the shared memory bus (the core
stalls for however long the bus takes under contention and throttling);
the compute phase is plain CPU work.

Progress is accounted in *uncontended-time units*: work is worth
``bytes / demand_rate`` plus its compute nanoseconds regardless of how
long it actually took, so ``app.useful_ns`` compares directly across
runs with different contention (the Figure 13 normalization).

Preemption is work-conserving: an interrupted iteration's remaining
bytes/compute are parked in the work object and the next ``start()``
resumes them — real threads do not restart their loop iteration when
descheduled, and schedulers that preempt frequently (VESSEL duty-cycles
at tens of microseconds) would otherwise be charged phantom losses.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.hardware.machine import Core
from repro.hardware.membus import MemoryBus
from repro.workloads.base import App, AppKind

DEFAULT_PHASE_BYTES = 384 << 10     # 384 KiB streamed per memory phase
DEFAULT_DEMAND_GBPS = 12.0          # one core's uncontended streaming rate
DEFAULT_COMPUTE_NS = 16_000         # 16 µs of compute per iteration
#: guard duration for the stall segment; the bus completion always
#: arrives first because rates never drop below capacity/streams
_STALL_GUARD_NS = 1 << 40


class _IterationState:
    """Progress of one (possibly interrupted) membench iteration."""

    __slots__ = ("remaining_bytes", "remaining_compute")

    def __init__(self, remaining_bytes: float, remaining_compute: int) -> None:
        self.remaining_bytes = remaining_bytes
        self.remaining_compute = remaining_compute


class MembenchRun:
    """In-flight membench iteration (memory phase, then compute phase)."""

    def __init__(self, work: "MembenchWork", core: Core,
                 on_done: Optional[Callable[[], None]],
                 state: _IterationState) -> None:
        self.work = work
        self.core = core
        self.on_done = on_done
        self.active = True
        self.state = state
        self._transfer = None
        self._compute_started = 0
        self._in_compute = False
        if state.remaining_bytes > 0:
            self._start_memory_phase()
        else:
            self._start_compute_phase()

    # ------------------------------------------------------------------
    def _start_memory_phase(self) -> None:
        work = self.work
        # The core stalls (busy, attributed to the app) while the bus
        # drains the block; completion ends the stall.
        self.core.run(f"app:{work.app.name}", _STALL_GUARD_NS, None)
        self._transfer = work.bus.start_transfer(
            work.app.name, self.state.remaining_bytes, work.demand_gbps,
            self._memory_phase_done,
        )

    def _memory_phase_done(self) -> None:
        if not self.active:
            return
        self.work.app.useful_ns += int(self.state.remaining_bytes
                                       / self.work.demand_gbps)
        self.state.remaining_bytes = 0
        self._transfer = None
        self.core.preempt()  # end the stall segment (time already charged)
        self._start_compute_phase()

    def _start_compute_phase(self) -> None:
        self._in_compute = True
        self._compute_started = self.core.sim.now
        self.core.run(f"app:{self.work.app.name}",
                      self.state.remaining_compute, self._iteration_done)

    def _iteration_done(self) -> None:
        if not self.active:
            return
        self.active = False
        work = self.work
        work.app.useful_ns += self.state.remaining_compute
        work.iterations += 1
        if self.on_done is not None:
            self.on_done()

    # ------------------------------------------------------------------
    def preempt(self) -> None:
        """Suspend the iteration; progress is credited and the remainder
        parked in the work object for the next start() to resume."""
        if not self.active:
            return
        self.active = False
        work = self.work
        if self._transfer is not None:
            transfer = self._transfer
            self._transfer = None
            remaining = work.bus.cancel_transfer(transfer)
            moved = transfer.total_bytes - remaining
            work.app.useful_ns += int(moved / work.demand_gbps)
            self.state.remaining_bytes = remaining
        if self.core.busy:
            self.core.preempt()
        if self._in_compute:
            elapsed = min(self.core.sim.now - self._compute_started,
                          self.state.remaining_compute)
            work.app.useful_ns += elapsed
            self.state.remaining_compute -= elapsed
        if (self.state.remaining_bytes > 0
                or self.state.remaining_compute > 0):
            work._interrupted.append(self.state)


class MembenchWork:
    """Endless memory/compute iterations for one B-app."""

    def __init__(self, app: App, bus: MemoryBus,
                 phase_bytes: int = DEFAULT_PHASE_BYTES,
                 demand_gbps: float = DEFAULT_DEMAND_GBPS,
                 compute_ns: int = DEFAULT_COMPUTE_NS) -> None:
        if phase_bytes <= 0 or demand_gbps <= 0 or compute_ns < 0:
            raise ValueError("membench parameters must be positive")
        self.app = app
        self.bus = bus
        self.phase_bytes = phase_bytes
        self.demand_gbps = demand_gbps
        self.compute_ns = compute_ns
        self.iterations = 0
        self._interrupted: List[_IterationState] = []

    def iteration_worth_ns(self) -> int:
        """One full iteration in uncontended-time units."""
        return int(self.phase_bytes / self.demand_gbps) + self.compute_ns

    def solo_gbps(self) -> float:
        """Average bandwidth of one uncontended, unthrottled thread.

        Below the demand rate because compute phases use no bandwidth.
        """
        mem_ns = self.phase_bytes / self.demand_gbps
        return self.demand_gbps * mem_ns / (mem_ns + self.compute_ns)

    def start(self, core: Core,
              on_done: Optional[Callable[[], None]] = None) -> MembenchRun:
        """Run (or resume) one iteration on ``core``."""
        if self._interrupted:
            state = self._interrupted.pop()
        else:
            state = _IterationState(float(self.phase_bytes), self.compute_ns)
        return MembenchRun(self, core, on_done, state)


def membench_app(bus: MemoryBus, name: str = "membench",
                 phase_bytes: int = DEFAULT_PHASE_BYTES,
                 demand_gbps: float = DEFAULT_DEMAND_GBPS,
                 compute_ns: int = DEFAULT_COMPUTE_NS) -> App:
    app = App(name, AppKind.BATCH)
    app.batch_work = MembenchWork(app, bus, phase_bytes, demand_gbps,
                                  compute_ns)
    return app
