"""The Figure 11 object-copy workload.

"Two single-threaded L-apps run on the same core, each of which runs an
object copy" over a uniformly random working set.  Each operation copies
one object: the source and destination lines are touched in the cache
simulator, and the op's duration is a fixed CPU cost plus a miss penalty
per cache miss — so the measured miss rate feeds back into completion
time exactly as cache thrashing does on real hardware.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.hardware.cache import CacheSim

DEFAULT_OBJECT_BYTES = 1024
DEFAULT_CPU_PER_OP_NS = 300
DEFAULT_MISS_PENALTY_NS = 80


class ObjCopyApp:
    """One object-copy application instance."""

    def __init__(self, name: str, ws_base: int, ws_size: int,
                 object_bytes: int = DEFAULT_OBJECT_BYTES,
                 cpu_per_op_ns: int = DEFAULT_CPU_PER_OP_NS,
                 miss_penalty_ns: int = DEFAULT_MISS_PENALTY_NS) -> None:
        if ws_size < 2 * object_bytes:
            raise ValueError("working set must hold at least two objects")
        self.name = name
        self.ws_base = ws_base
        self.ws_size = ws_size
        self.object_bytes = object_bytes
        self.cpu_per_op_ns = cpu_per_op_ns
        self.miss_penalty_ns = miss_penalty_ns
        self.ops = 0
        self.total_ns = 0

    def _random_object(self, rng: random.Random) -> int:
        slots = self.ws_size // self.object_bytes
        index = rng.randrange(slots)
        return self.ws_base + index * self.object_bytes

    def run_op(self, cache: CacheSim, rng: random.Random) -> Tuple[int, int]:
        """Copy one object; returns (duration_ns, misses)."""
        src = self._random_object(rng)
        dst = self._random_object(rng)
        misses = cache.access_range(src, self.object_bytes, tag=self.name)
        misses += cache.access_range(dst, self.object_bytes, tag=self.name)
        duration = self.cpu_per_op_ns + misses * self.miss_penalty_ns
        self.ops += 1
        self.total_ns += duration
        return duration, misses

    def mean_op_ns(self) -> float:
        if self.ops == 0:
            return float("nan")
        return self.total_ns / self.ops
