"""Service-time distributions.

Each sampler is a callable returning an integer nanosecond service time;
they carry their analytic mean so capacity math does not need sampling.
"""

from __future__ import annotations

import math
import random


class ServiceSampler:
    """Base: callable with a known mean."""

    mean_ns: float

    def __call__(self) -> int:
        raise NotImplementedError


class ConstantService(ServiceSampler):
    """Deterministic service time."""

    def __init__(self, service_ns: int) -> None:
        if service_ns <= 0:
            raise ValueError(f"service time must be positive: {service_ns}")
        self.service_ns = int(service_ns)
        self.mean_ns = float(service_ns)

    def __call__(self) -> int:
        return self.service_ns


class ExponentialService(ServiceSampler):
    """Exponential service time (the classic M/M/k assumption)."""

    def __init__(self, mean_ns: float, rng: random.Random) -> None:
        if mean_ns <= 0:
            raise ValueError(f"mean must be positive: {mean_ns}")
        self.mean_ns = float(mean_ns)
        self.rng = rng

    def __call__(self) -> int:
        return max(1, int(self.rng.expovariate(1.0 / self.mean_ns)))


class LognormalService(ServiceSampler):
    """Lognormal service time parameterized by median and sigma."""

    def __init__(self, median_ns: float, sigma: float,
                 rng: random.Random) -> None:
        if median_ns <= 0 or sigma < 0:
            raise ValueError("median must be positive and sigma >= 0")
        self.mu = math.log(median_ns)
        self.sigma = sigma
        self.mean_ns = median_ns * math.exp(sigma * sigma / 2.0)
        self.rng = rng

    def __call__(self) -> int:
        return max(1, int(self.rng.lognormvariate(self.mu, self.sigma)))


class BimodalService(ServiceSampler):
    """Two-point mixture (short fast path, occasional slow path)."""

    def __init__(self, fast_ns: int, slow_ns: int, slow_fraction: float,
                 rng: random.Random) -> None:
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError(f"slow_fraction out of range: {slow_fraction}")
        self.fast_ns = int(fast_ns)
        self.slow_ns = int(slow_ns)
        self.slow_fraction = slow_fraction
        self.rng = rng
        self.mean_ns = (fast_ns * (1 - slow_fraction)
                        + slow_ns * slow_fraction)

    def __call__(self) -> int:
        if self.rng.random() < self.slow_fraction:
            return self.slow_ns
        return self.fast_ns
