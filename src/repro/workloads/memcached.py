"""Memcached with Facebook's USR request mix (§6.1).

USR is read-dominated (GETs of small keys) with occasional SETs; the
paper reports ~1 µs average service time.  We model GETs as a tight
lognormal around 0.9 µs and SETs slightly slower, giving a 1 µs mean.
"""

from __future__ import annotations

import random

from repro.workloads.base import App, AppKind
from repro.workloads.synthetic import LognormalService

MEMCACHED_MEAN_SERVICE_NS = 1000
_GET_FRACTION = 0.97


class UsrServiceSampler:
    """USR mix: mostly GETs, a few SETs, ~1 µs mean."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._get = LognormalService(median_ns=930, sigma=0.22, rng=rng)
        self._set = LognormalService(median_ns=1450, sigma=0.30, rng=rng)
        self.mean_ns = (_GET_FRACTION * self._get.mean_ns
                        + (1 - _GET_FRACTION) * self._set.mean_ns)

    def __call__(self) -> int:
        if self.rng.random() < _GET_FRACTION:
            return self._get()
        return self._set()


class UsrPayloadSampler:
    """(bytes_in, bytes_out) for the USR mix.

    Facebook's USR pool is tiny-object dominated: keys are 16-21 B and
    values a few bytes to a few tens of bytes.  A GET carries the key in
    and the value out; a SET carries key+value in and a short stored-ack
    out.  Sizes are drawn independently of the service-time sampler's
    GET/SET coin — the correlation does not affect link serialization,
    which only sees the byte distribution.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def _key_bytes(self) -> int:
        return self.rng.randint(16, 21)

    def _value_bytes(self) -> int:
        # Mostly 2-30 B with an occasional few-hundred-byte object.
        if self.rng.random() < 0.95:
            return self.rng.randint(2, 30)
        return self.rng.randint(64, 512)

    def __call__(self) -> tuple:
        key, value = self._key_bytes(), self._value_bytes()
        if self.rng.random() < _GET_FRACTION:
            return 24 + key, 32 + value       # GET: key in, value out
        return 32 + key + value, 8            # SET: key+value in, ack out


def memcached_app(name: str = "memcached") -> App:
    """A memcached L-app (pair it with a UsrServiceSampler source)."""
    return App(name, AppKind.LATENCY,
               mean_service_ns=MEMCACHED_MEAN_SERVICE_NS)
