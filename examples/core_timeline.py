#!/usr/bin/env python
"""Figure-7-style core timelines: watch the schedulers fill (or waste)
cores.

Attaches an execution tracer to identical VESSEL and Caladan runs
(memcached + Linpack, two worker cores) and renders what each core did
over a 200 µs window: ``M`` = memcached, ``L`` = Linpack, ``r`` =
userspace runtime (spins, stealing, switches), ``K`` = kernel
(rebinds, the 5.3 µs reallocation pipeline), ``.`` = idle.

Run:  python examples/core_timeline.py
"""

from repro.sim import Simulator, RngStreams, Tracer, render_timeline, MS, US
from repro.hardware import CostModel, Machine
from repro.vessel import VesselSystem
from repro.baselines import CaladanSystem
from repro.workloads import memcached_app, linpack_app, OpenLoopSource
from repro.workloads.memcached import UsrServiceSampler

WINDOW_START = 4 * MS
WINDOW = 200 * US


def run(system_cls):
    sim = Simulator()
    machine = Machine(sim, CostModel(), 3)  # scheduler + 2 workers
    tracer = Tracer(sim)
    machine.attach_tracer(tracer)
    rngs = RngStreams(7)
    system = system_cls(sim, machine, rngs,
                        worker_cores=machine.cores[1:])
    mc, lp = memcached_app(), linpack_app()
    system.add_app(mc)
    system.add_app(lp)
    system.start()
    OpenLoopSource(sim, mc, system.submit, rate_mops=0.9,
                   service_sampler=UsrServiceSampler(rngs.stream("svc")),
                   rng=rngs.stream("arr"))
    sim.run(until=WINDOW_START + WINDOW)
    machine.settle_all()
    return tracer


def main() -> None:
    for system_cls, blurb in (
        (VesselSystem,
         "VESSEL (one-level): 0.16 us switches pack the cores"),
        (CaladanSystem,
         "Caladan (two-level): 2 us spins, kernel rebinds, idle gaps"),
    ):
        tracer = run(system_cls)
        print(f"== {blurb} ==")
        print(render_timeline(tracer, WINDOW_START, WINDOW_START + WINDOW,
                              cores=[1, 2], width=96))
        print()


if __name__ == "__main__":
    main()
