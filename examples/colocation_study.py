#!/usr/bin/env python
"""Colocation study: sweep L-app load across schedulers (Figure 9 style).

Compares VESSEL against Caladan (and its Delay Range variants) on the
same machine, workload, and seed, and prints total normalized throughput
and P999 tail latency per load point.

Run:  python examples/colocation_study.py [--scale paper]
"""

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    l_capacity_mops,
    normalized_total,
    parse_profile,
    run_colocation,
)
from repro.workloads.memcached import MEMCACHED_MEAN_SERVICE_NS

SYSTEMS = ("ideal", "vessel", "caladan", "caladan-dr-l", "caladan-dr-h")
LOADS = (0.25, 0.5, 0.75)


def main() -> None:
    cfg = parse_profile()
    capacity = l_capacity_mops(cfg, MEMCACHED_MEAN_SERVICE_NS)
    print(f"machine: {cfg.num_workers} workers, capacity ~"
          f"{capacity:.1f} Mops/s; window {cfg.sim_ms} ms\n")

    rows = []
    for system in SYSTEMS:
        for load in LOADS:
            report = run_colocation(
                system, cfg,
                l_specs=[("memcached", "memcached", load * capacity)],
                b_specs=("linpack",))
            rows.append([
                system, load,
                round(normalized_total(
                    report, cfg,
                    {"memcached": MEMCACHED_MEAN_SERVICE_NS}), 3),
                round(report.waste_fraction(), 3),
                round(report.p999_us("memcached"), 1),
            ])
    print(format_table(
        ["system", "L load", "total norm tput", "waste", "P999 us"], rows))
    print("\nreading guide: ideal pins 1.000 total normalized throughput;"
          "\nVESSEL should sit within a few percent of it with single-digit"
          "\nmicrosecond tails, while the Caladan variants trade 9-20% of"
          "\nthroughput (or 3-8x the tail) for their kernel-mediated"
          "\nswitching - the paper's Figure 9.")


if __name__ == "__main__":
    main()
