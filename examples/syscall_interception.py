#!/usr/bin/env python
"""The §5.2.4 story: why uProcesses must not issue kernel syscalls.

uProcess threads can be scheduled inside *any* backing kProcess.  If two
uProcesses happen to share one kProcess, a raw kernel fd table would let
uProcess B brute-force descriptors uProcess A opened (security), and a
uProcess migrating to another kProcess would lose its descriptors
(correctness).  VESSEL's runtime therefore proxies all syscalls and keeps
a per-uProcess descriptor map.

Run:  python examples/syscall_interception.py
"""

from repro.sim import Simulator
from repro.hardware import CostModel, Machine, Permission
from repro.kernel import KernelSignals, KProcess, SyscallLayer
from repro.uprocess import Manager, ProgramImage
from repro.vessel import SyscallDenied, VesselRuntime


def main() -> None:
    sim = Simulator()
    costs = CostModel()
    machine = Machine(sim, costs, 2)
    syscalls = SyscallLayer(costs)
    manager = Manager(syscalls=syscalls,
                      signals=KernelSignals(sim, costs), costs=costs)
    domain = manager.create_domain(machine.cores)
    app_a = manager.create_uprocess(domain, ProgramImage("tenant-a"))
    app_b = manager.create_uprocess(domain, ProgramImage("tenant-b"))

    print("== The problem, without the runtime proxy ==")
    shared_kproc = KProcess("shared-backing-kprocess")
    kfd = syscalls.open(shared_kproc, "/tenant-a/secrets.db",
                        owner_label="tenant-a")
    print(f"tenant-a opened /tenant-a/secrets.db -> kernel fd {kfd}")
    probe = syscalls.read_fd(shared_kproc, kfd)
    print(f"tenant-b brute-forces fd {kfd} in the same kProcess and reads: "
          f"{probe.path}  <-- LEAK")

    print("\n== With VESSEL's syscall interception (§5.2.4) ==")
    runtime = VesselRuntime(domain, syscalls)
    ufd = runtime.sys_open(app_a, "/tenant-a/secrets.db")
    print(f"tenant-a opens the file through the call gate -> ufd {ufd}")
    for candidate in range(ufd + 3):
        try:
            runtime.sys_read(app_b, candidate)
            print(f"  tenant-b read ufd {candidate}  <-- LEAK")
        except SyscallDenied as exc:
            print(f"  tenant-b probes ufd {candidate}: {exc}")
    print(f"tenant-a still reads fine: "
          f"{runtime.sys_read(app_a, ufd).path}")

    print("\n== Executable mappings are categorically refused (§4.2) ==")
    try:
        runtime.sys_mmap(app_b, 4096, Permission.rx())
    except SyscallDenied as exc:
        print(f"mmap(PROT_EXEC) by tenant-b: {exc}")
    segments = runtime.sys_dlopen(app_b, ProgramImage("numpy-clone"))
    print(f"dlopen through the runtime (inspected first) -> text at "
          f"{segments.text_addr:#x}")


if __name__ == "__main__":
    main()
