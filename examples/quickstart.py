#!/usr/bin/env python
"""Quickstart: colocate a latency-critical app with a batch app under
VESSEL and watch sub-microsecond core reallocation at work.

Run:  python examples/quickstart.py
"""

from repro.sim import Simulator, RngStreams, MS
from repro.hardware import CostModel, Machine
from repro.vessel import VesselSystem
from repro.workloads import memcached_app, linpack_app, OpenLoopSource
from repro.workloads.memcached import UsrServiceSampler


def main() -> None:
    # A machine: 1 dedicated scheduler core + 8 workers, and the
    # calibrated cost model (Uintr, MPK, call gate, kernel paths).
    sim = Simulator()
    machine = Machine(sim, CostModel(), num_cores=9)
    rngs = RngStreams(42)

    # VESSEL builds a scheduling domain: one shared address space (SMAS),
    # one uProcess per application, protection keys, the call gate.
    system = VesselSystem(sim, machine, rngs)

    memcached = memcached_app()        # L-app: ~1 us requests
    linpack = linpack_app()            # B-app: harvests leftover cycles
    system.add_app(memcached)
    system.add_app(linpack)
    system.start()

    # An open-loop client drives memcached at 4 Mops/s (about half the
    # 8-worker capacity).
    OpenLoopSource(sim, memcached, system.submit, rate_mops=4.0,
                   service_sampler=UsrServiceSampler(rngs.stream("svc")),
                   rng=rngs.stream("arrivals"))

    # Warm up 5 ms, measure 25 ms.
    sim.at(5 * MS, system.begin_measurement)
    sim.run(until=30 * MS)

    report = system.report()
    lat = report.latency["memcached"]
    print("== VESSEL quickstart (memcached + Linpack, 8 workers) ==")
    print(f"offered load            : 4.0 Mops/s")
    print(f"memcached throughput    : "
          f"{report.throughput_mops('memcached'):.2f} Mops/s")
    print(f"memcached latency       : avg {lat['avg_us']:.2f} us, "
          f"P99 {lat['p99_us']:.2f} us, P999 {lat['p999_us']:.2f} us")
    print(f"linpack harvested       : "
          f"{report.useful_ns['linpack'] / report.elapsed_ns:.2f} cores")
    print(f"application fraction    : {report.app_fraction():.1%}")
    print(f"scheduling waste        : {report.waste_fraction():.1%}")
    print(f"userspace switches      : "
          f"{system.switcher.park_switches} parks, "
          f"{system.switcher.preempt_switches} preemptions "
          f"(~0.16 us each; Caladan pays 2.1-5.3 us)")


if __name__ == "__main__":
    main()
