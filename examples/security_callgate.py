#!/usr/bin/env python
"""Security demo: the §4.2 attack classes against the call gate.

Builds a real scheduling domain (SMAS + MPK keys + call gate + loader),
launches two mutually-distrusting uProcesses, runs every modeled attack,
and then disables individual defenses to show each one is load-bearing.

Run:  python examples/security_callgate.py
"""

from repro.sim import Simulator
from repro.hardware import CostModel, Machine
from repro.kernel import KernelSignals, SyscallLayer
from repro.uprocess import CallGate, Manager, ProgramImage, UThread
from repro.uprocess import attacks as atk


def banner(text: str) -> None:
    print(f"\n--- {text} ---")


def show(outcome) -> None:
    verdict = "!! ATTACK SUCCEEDED" if outcome.succeeded else "defeated"
    print(f"  {outcome.name:26s} {verdict:20s} {outcome.detail[:60]}")


def main() -> None:
    sim = Simulator()
    costs = CostModel()
    machine = Machine(sim, costs, 4)
    manager = Manager(syscalls=SyscallLayer(costs),
                      signals=KernelSignals(sim, costs), costs=costs)
    domain = manager.create_domain(machine.cores)
    victim = manager.create_uprocess(domain, ProgramImage("victim-db"))
    attacker = manager.create_uprocess(domain, ProgramImage("attacker"))
    attacker_thread = UThread(attacker)
    sibling = UThread(attacker)
    core = machine.cores[0]
    domain.switcher.install(core, attacker_thread)

    banner("defenses ON (the shipped configuration)")
    show(atk.attack_embedded_wrpkru(domain.loader, attacker))
    show(atk.attack_dlopen_wrpkru(domain.loader, attacker))
    show(atk.attack_control_flow_hijack(domain.gate, core))
    show(atk.attack_plt_overwrite(domain.smas, attacker))
    show(atk.attack_return_address(domain.gate, domain.smas, core,
                                   attacker_thread, sibling))
    show(atk.attack_direct_runtime_read(domain.smas, core, attacker))
    show(atk.attack_cross_uprocess_read(domain.smas, attacker, victim))
    show(atk.attack_jump_into_foreign_text(domain.smas, attacker, victim))

    banner("ablation: PKRU recheck disabled (ERIM/Hodor's fix removed)")
    weak_gate = CallGate(domain.smas, pkru_recheck=False)
    show(atk.attack_control_flow_hijack(weak_gate, core))

    banner("ablation: runtime stack switch disabled")
    weak_gate = CallGate(domain.smas, stack_switch=False)
    show(atk.attack_return_address(weak_gate, domain.smas, core,
                                   attacker_thread, sibling))

    banner("fault shielding (§4.3)")
    condemned = domain.handle_fault(core.id)
    print(f"  segfault on core {core.id}: condemned={condemned.name}; "
          f"kill command queued, consumed at next privileged entry")
    domain.process_commands(core.id)
    print(f"  attacker alive: {attacker.alive}; "
          f"victim alive: {victim.alive} (blast radius contained)")


if __name__ == "__main__":
    main()
