#!/usr/bin/env python
"""Dense colocation: many memcached instances on ONE core (Figure 10).

With 10 latency-critical apps sharing a single core, every request
boundary is a potential inter-application switch.  VESSEL switches
between uProcesses for the same ~0.16 us an intra-app switch costs;
Caladan has to rebind the core through the IOKernel (2.1 us) or run the
5.3 us kernel preemption pipeline.

Run:  python examples/dense_colocation.py
"""

from repro.experiments.common import ExperimentConfig, format_table, \
    run_colocation


def main() -> None:
    cfg = ExperimentConfig(num_workers=1, sim_ms=20, warmup_ms=4,
                           bursty=True)
    rows = []
    for system in ("vessel", "caladan-dr-l"):
        for count in (1, 10):
            load = 0.6  # 60% of the single core, split across instances
            l_specs = [("memcached", f"mc{i}", load / count)
                       for i in range(count)]
            report = run_colocation(system, cfg, l_specs=l_specs,
                                    b_specs=())
            agg = sum(report.throughput_mops(s[1]) for s in l_specs)
            worst = max(report.p999_us(s[1]) for s in l_specs)
            rows.append([system, count, round(agg, 3), round(worst, 1),
                         round(report.waste_fraction(), 3)])
    print("one worker core, 60% aggregate load, bursty clients\n")
    print(format_table(["system", "#instances", "agg tput Mops",
                        "worst P999 us", "waste"], rows))
    print("\npaper's Figure 10: going from 1 to 10 instances costs Caladan"
          "\n~25% of its peak and inflates its tail ~20%, while VESSEL is"
          "\nalmost unchanged.")


if __name__ == "__main__":
    main()
