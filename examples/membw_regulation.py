#!/usr/bin/env python
"""Memory-bandwidth regulation accuracy (Figure 13b).

Throttle a single membench thread to 10%..100% of its solo bandwidth
using three mechanisms and compare how closely each tracks the target:

* VESSEL's core duty-cycling (sub-microsecond switches, 50 us windows);
* Intel MBA's hardware throttling levels (coarse, indirect);
* a cgroup CPU quota (CFS-period granularity, slice-quantized).

Run:  python examples/membw_regulation.py
"""

from repro.experiments.common import ExperimentConfig, format_table
from repro.experiments.fig13_membw import run_accuracy_part


def main() -> None:
    results = run_accuracy_part(ExperimentConfig())
    rows = [[f"{r['target']:.0%}", f"{r['vessel']:.1%}",
             f"{r['mba']:.1%}", f"{r['cgroup']:.1%}"]
            for r in results["rows"]]
    print("achieved bandwidth (fraction of the thread's solo bandwidth)\n")
    print(format_table(["target", "VESSEL", "Intel MBA", "cgroup quota"],
                       rows))
    errors = results["max_error"]
    print(f"\nworst-case |achieved - target|: "
          f"VESSEL {errors['vessel']:.1%}, MBA {errors['mba']:.1%}, "
          f"cgroup {errors['cgroup']:.1%}")
    print("\nVESSEL can hold the line because suspending/resuming a core "
          "costs ~0.16 us,\nso duty-cycling at 50 us windows is practically "
          "free - the paper's Figure 13b.")


if __name__ == "__main__":
    main()
