#!/usr/bin/env python
"""Park-on-block in action (§4.4 / §5.2.5): a storage-backed service.

A RocksDB-like app serves requests where 30% miss the in-memory cache
and read a block from an NVMe device (~10 µs).  Under VESSEL the serving
thread *parks* during the IO — the core switches to Linpack for 0.16 µs
and switches back when the completion arrives — so IO waits cost the
machine nothing.

Run:  python examples/storage_app.py
"""

from repro.sim import Simulator, RngStreams, MS
from repro.hardware import CostModel, Machine
from repro.vessel import VesselSystem
from repro.baselines import CaladanSystem
from repro.workloads import linpack_app
from repro.workloads.storage import StorageRequestSource, storage_app


def run(system_cls, rate=0.8, workers=4):
    sim = Simulator()
    machine = Machine(sim, CostModel(), workers + 1)
    rngs = RngStreams(21)
    system = system_cls(sim, machine, rngs,
                        worker_cores=machine.cores[1:])
    app = storage_app()
    batch = linpack_app()
    system.add_app(app)
    system.add_app(batch)
    system.start()
    source = StorageRequestSource(sim, app, system.submit, rate,
                                  rngs.stream("io"), miss_fraction=0.3)
    sim.at(4 * MS, system.begin_measurement)
    sim.run(until=24 * MS)
    return system.report(), source


def main() -> None:
    print("rocksdb-like app (30% of requests park ~10 us on NVMe) "
          "+ Linpack, 4 workers, 0.8 Mops/s\n")
    for system_cls in (VesselSystem, CaladanSystem):
        report, source = run(system_cls)
        lat = report.latency["rocksdb"]
        b_cores = report.useful_ns["linpack"] / report.elapsed_ns
        print(f"{report.system:10s} "
              f"tput={report.throughput_mops('rocksdb'):.2f} Mops  "
              f"P50={lat['p50_us']:5.1f} us  P999={lat['p999_us']:6.1f} us  "
              f"linpack={b_cores:.2f} cores  "
              f"waste={report.waste_fraction():.1%}")
    print("\nboth systems park threads during IO, but every park/unpark "
          "pair costs\nVESSEL ~0.3 us and Caladan ~4-7 us of kernel time — "
          "at 30% miss rate that\ngap shows up directly in waste and tails.")


if __name__ == "__main__":
    main()
