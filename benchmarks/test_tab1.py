"""Table 1: core reallocation latency distribution."""

import pytest

from repro.experiments import tab1_context_switch as exp
from repro.experiments.common import ExperimentConfig
from repro.obs.ledger import OpLedger


@pytest.mark.benchmark(group="table1")
def test_tab1_context_switch(benchmark, record_output):
    cfg = ExperimentConfig()

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    vessel, caladan = results["vessel"], results["caladan"]

    # Paper: VESSEL 0.161 us avg / 0.706 us P999.
    assert vessel["avg_us"] == pytest.approx(0.161, abs=0.015)
    assert 0.4 <= vessel["p999_us"] <= 1.1
    # Paper: Caladan 2.103 us avg / 5.461 us P999.
    assert caladan["avg_us"] == pytest.approx(2.103, abs=0.12)
    assert 4.5 <= caladan["p999_us"] <= 6.5
    # The headline ratio: >10x cheaper switches.
    assert caladan["avg_us"] / vessel["avg_us"] > 10


def test_tab1_ledger_accounts_for_every_switch_nanosecond():
    """Op-breakdown regression check: the ledger's per-op charges for the
    VESSEL park-switch path must sum exactly to the end-to-end switch
    costs — no unattributed nanoseconds may appear in Table 1."""
    cfg = ExperimentConfig()
    ledger = OpLedger()
    iterations = 2_000
    samples = exp.measure_vessel(cfg, iterations, ledger=ledger)

    switch_ops = ("uctx_save", "callgate_enter", "runtime_queue",
                  "uctx_restore", "callgate_exit", "switch_noise",
                  "switch_jitter")
    per_op = {op: ledger.total_ns(domain="uproc", op=op)
              for op in switch_ops}
    assert sum(per_op.values()) == sum(samples)
    # Every constituent op was charged once per switch.
    for op in switch_ops:
        assert ledger.op_count(op, domain="uproc") == iterations
    # Park switches never pay the preemption path.
    assert ledger.op_count("uiret", domain="uproc") == 0
