"""Figure 7: execution-timeline comparison (traced)."""

import pytest

from repro.experiments import fig07_timeline as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig7")
def test_fig07_timeline(benchmark, record_output):
    def run():
        with record_output():
            return exp.main(ExperimentConfig())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    vessel, caladan = results["vessel"], results["caladan"]

    # VESSEL packs the cores with application work.
    assert vessel["app_fraction"] > 0.9
    assert vessel["kernel_fraction"] < 0.02
    # Caladan's timeline shows spins, kernel switches, and idle gaps.
    assert caladan["app_fraction"] < vessel["app_fraction"] - 0.1
    assert caladan["kernel_fraction"] > 0.03
    assert caladan["runtime_fraction"] > vessel["runtime_fraction"]
    assert caladan["idle_fraction"] > 0.02
