"""Figure 10: dense colocation of memcached instances on one core."""

import pytest

from repro.experiments import fig10_dense as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig10")
def test_fig10_dense(benchmark, record_output):
    cfg = ExperimentConfig(sim_ms=15, warmup_ms=3)

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = results["summary"]

    def peak(system, count):
        return summary[(system, count)]["peak_tput_mops"]

    # Paper: Caladan's peak drops ~25% from 1 to 10 instances; VESSEL is
    # almost unchanged.
    vessel_drop = 1.0 - peak("vessel", 10) / max(1e-9, peak("vessel", 1))
    caladan_drop = 1.0 - peak("caladan-dr-l", 10) / max(
        1e-9, peak("caladan-dr-l", 1))
    assert caladan_drop > 0.15
    assert vessel_drop < caladan_drop
    assert vessel_drop < 0.15
    # And VESSEL's dense peak beats Caladan's dense peak outright.
    assert peak("vessel", 10) > peak("caladan-dr-l", 10)
