"""Figure 12: goodput vs number of managed cores (control-plane knee)."""

import pytest

from repro.experiments import fig12_scalability as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig12")
def test_fig12_scalability(benchmark, record_output):
    cfg = ExperimentConfig(sim_ms=5, warmup_ms=2, bursty=True)

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = results["gains"]

    # Paper: VESSEL gains ~25% from 32 to 42 cores and dips at 44.
    assert gains["vessel"][42] > 0.15
    assert gains["vessel"][44] < gains["vessel"][42]
    # Paper: Caladan gains ~1.45% to 34 cores and declines beyond.
    assert abs(gains["caladan"][34]) < 0.15
    assert gains["caladan"][36] <= gains["caladan"][34]
    # VESSEL scales where Caladan cannot.
    assert gains["vessel"][42] > gains["caladan"][34] + 0.1
