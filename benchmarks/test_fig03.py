"""Figure 3: the Caladan core-reallocation timeline."""

import pytest

from repro.experiments import fig03_realloc_timeline as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig3")
def test_fig03_realloc_timeline(benchmark, record_output):
    def run():
        with record_output():
            return exp.main(ExperimentConfig())

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # Paper: the whole pipeline takes 5.3 us on average.
    assert results["measured_total_us"] == pytest.approx(5.3, abs=0.01)
    assert len(results["timeline"]) == 6
    # Kernel phases dominate; only the SIGUSR-driven save is userspace.
    runtime_phases = [p for p in results["timeline"]
                      if p["category"] == "runtime"]
    assert len(runtime_phases) == 1
    assert runtime_phases[0]["phase"] == "userspace state save"
