"""Figure 11: cache friendliness of the shared address space."""

import pytest

from repro.experiments import fig11_cache as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig11")
def test_fig11_cache(benchmark, record_output):
    def run():
        with record_output():
            return exp.main(ExperimentConfig())

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # Paper: 4.6% -> 0.0415% miss rate; completion 6-24% lower.
    assert results["vessel"]["miss_rate"] < 0.005
    assert results["caladan"]["miss_rate"] > 0.01
    assert results["caladan"]["miss_rate"] > \
        20 * max(results["vessel"]["miss_rate"], 1e-6)
    assert 0.03 <= results["completion_reduction"] <= 0.45
