"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures at a reduced
("smoke") scale, asserts the qualitative shape the paper reports, and
prints the paper-vs-measured rows.  Full-scale runs:
``python -m repro.experiments.<module> --scale paper``.

Benchmarks write their printed tables to ``benchmarks/results/`` as well,
since pytest captures stdout (run with ``-s`` to see them live).
"""

import contextlib
import io
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_output(request):
    """Capture an experiment's printed table and persist it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    @contextlib.contextmanager
    def _recorder():
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            yield buffer
        text = buffer.getvalue()
        path = os.path.join(RESULTS_DIR, f"{request.node.name}.txt")
        with open(path, "w") as handle:
            handle.write(text)
        print(text)

    return _recorder
