"""Figure 9: L-app + B-app colocation across all systems."""


import pytest

from repro.experiments import fig09_colocation as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig9")
def test_fig09_colocation(benchmark, record_output):
    cfg = ExperimentConfig(num_workers=6, sim_ms=15, warmup_ms=3)

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = results["summary"]

    # Paper: VESSEL declines 6.6% on average; Caladan 16.1% on average.
    assert summary["vessel"]["avg_decline"] < 0.10
    assert summary["caladan"]["avg_decline"] > 1.5 * \
        summary["vessel"]["avg_decline"]

    def rows(system, workload="memcached"):
        return [r for r in results[workload] if r["system"] == system]

    # VESSEL's P999 below every Caladan variant at every load.
    for vrow in rows("vessel"):
        for other in ("caladan", "caladan-dr-l", "caladan-dr-h"):
            twin = next(r for r in rows(other) if r["load"] == vrow["load"])
            assert vrow["p999_us"] < twin["p999_us"]

    # DR-H approaches VESSEL's efficiency but pays more latency.
    drh = summary["caladan-dr-h"]
    assert drh["avg_decline"] < summary["caladan"]["avg_decline"]

    # Arachne and CFS: low loads only, terrible tails (paper: >10 ms for
    # CFS; Arachne collapses under load).
    cfs_rows = rows("linux-cfs")
    assert max(r["p999_us"] for r in cfs_rows) > 1000
    arachne_rows = rows("arachne")
    assert max(r["p999_us"] for r in arachne_rows) > 100

    # Silo: both main systems near-ideal (switch cost amortized).
    for row in results["silo"]:
        if row["system"] in ("vessel", "caladan"):
            assert row["total_normalized"] > 0.9
