"""Figure 2: cost of dense colocation (cycles breakdown vs #apps)."""

import pytest

from repro.experiments import fig02_dense_cost as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig2")
def test_fig02_dense_cost(benchmark, record_output):
    cfg = ExperimentConfig(sim_ms=15, warmup_ms=3)

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    points = results["points"]

    # Paper: "as the number of colocated applications increases, the CPU
    # cycles spent in the kernel increase as well."
    kernel = [p["kernel_fraction"] for p in points]
    assert kernel[-1] > kernel[0]
    assert kernel[-1] > 1.5 * kernel[0]
    # Tail latency degrades with density under Caladan.
    assert points[-1]["p999_us"] > points[0]["p999_us"]
