"""§2.2 microbenchmark: Uintr vs IPI-signal latency."""

import pytest

from repro.experiments import micro_uintr as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="micro")
def test_micro_uintr_vs_ipi(benchmark, record_output):
    def run():
        with record_output():
            return exp.main(ExperimentConfig())

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # Paper: "up to 15x lower latencies than IPI-based signals".
    assert 10 <= results["ratio"] <= 25
    assert results["uintr_us"] < 0.5
    assert results["ipi_signal_us"] > 2.0
