"""Ablations: mechanism vs policy contributions (DESIGN.md §7)."""

import pytest

from repro.experiments import ablations as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark, record_output):
    cfg = ExperimentConfig(num_workers=6, sim_ms=15, warmup_ms=3)

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {r["variant"]: r for r in results["rows"]}

    # The one-level policy NEEDS the cheap mechanism: pricing its
    # switches like kernel switches wrecks efficiency.
    assert by_name["vessel-kernel-switch"]["waste_fraction"] > \
        3 * by_name["vessel"]["waste_fraction"]

    # Uintr buys tail latency, not throughput: same efficiency, worse
    # P999 when preemption goes through kernel signals.
    assert by_name["vessel-no-uintr"]["waste_fraction"] == pytest.approx(
        by_name["vessel"]["waste_fraction"], abs=0.02)
    assert by_name["vessel-no-uintr"]["p999_us"] > \
        by_name["vessel"]["p999_us"]

    # The conservative two-level policy cannot fully exploit cheap
    # switches: better than stock Caladan, still behind VESSEL.
    assert by_name["caladan-fast-switch"]["app_fraction"] > \
        by_name["caladan"]["app_fraction"]
    assert by_name["caladan-fast-switch"]["app_fraction"] < \
        by_name["vessel"]["app_fraction"]

    # §4.2 defense cost: tens of nanoseconds on a 160 ns switch.
    gate = results["gate_defense"]
    overhead = gate["full_defenses_ns"] - gate["no_defenses_ns"]
    assert 10 <= overhead <= 100
