"""Figure 1: cost of application colocation under Caladan."""

import pytest

from repro.experiments import fig01_colocation_cost as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig1")
def test_fig01_colocation_cost(benchmark, record_output):
    cfg = ExperimentConfig(num_workers=6, sim_ms=15, warmup_ms=3)

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # Paper: total normalized throughput declines up to 18%; up to 17%
    # of cycles are spent in kernel+runtime.  Shape check: a clearly
    # nonzero decline in the same ballpark.
    assert 0.05 <= results["max_decline"] <= 0.35
    assert 0.04 <= results["max_waste"] <= 0.30
    # Every point loses throughput relative to ideal.
    for point in results["points"]:
        assert point["total_normalized"] < 0.97
        assert point["kernel_cores"] > 0
        assert point["runtime_cores"] > 0
