"""Switch-cost sensitivity: where VESSEL's advantage comes from."""

import pytest

from repro.experiments import sensitivity as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="sensitivity")
def test_switch_cost_sensitivity(benchmark, record_output):
    cfg = ExperimentConfig(num_workers=6, sim_ms=15, warmup_ms=3)

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = results["rows"]

    # Waste grows monotonically (within noise) with switch cost.
    assert rows[-1]["waste"] > rows[0]["waste"] * 3
    # The thesis, quantified: the one-level policy's efficiency advantage
    # requires sub-microsecond switches...
    assert results["efficiency_crossover_us"] is not None
    assert results["efficiency_crossover_us"] < 2.2
    # ...while the latency advantage survives far longer, because even an
    # expensive direct switch beats waiting for a 10 us allocation tick.
    lat = results["latency_crossover_us"]
    assert lat is None or lat > 2 * results["efficiency_crossover_us"]
