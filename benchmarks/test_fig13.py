"""Figure 13: memory-bandwidth-aware colocation and regulation."""

import pytest

from repro.experiments import fig13_membw as exp
from repro.experiments.common import ExperimentConfig


@pytest.mark.benchmark(group="fig13")
def test_fig13_membw(benchmark, record_output):
    cfg = ExperimentConfig(num_workers=6, sim_ms=15, warmup_ms=3)

    def run():
        with record_output():
            return exp.main(cfg)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # (a) Paper: VESSEL achieves up to 43% higher total normalized
    # throughput under the tail-latency constraint.
    colo = results["colocation"]
    assert colo["max_advantage"] > 0.08
    for row in colo["rows"]:
        if row["system"] == "vessel":
            assert row["meets_slo"]

    # (b) Paper: MBA and the cgroup approach use far more bandwidth than
    # desired; VESSEL tracks the target.
    acc = results["accuracy"]
    assert acc["max_error"]["vessel"] < 0.10
    assert acc["max_error"]["mba"] > 0.25
    assert acc["max_error"]["cgroup"] > 0.12
    low = acc["rows"][0]
    assert low["mba"] > 3 * low["target"]     # gross overshoot at 10%
    assert low["cgroup"] > 1.5 * low["target"]
